//! # offload-benchmarks
//!
//! The six evaluation programs of the paper (Table 3), re-implemented in
//! the mini-C language so the whole pipeline — analysis, partitioning and
//! distributed execution — can run on them:
//!
//! | name        | origin                      | parameters |
//! |-------------|-----------------------------|------------|
//! | `rawcaudio` | Mediabench ADPCM compress   | 1          |
//! | `rawdaudio` | Mediabench ADPCM decompress | 1          |
//! | `encode`    | Mediabench G.721 compress   | 4          |
//! | `decode`    | Mediabench G.721 decompress | 4          |
//! | `fft`       | MiBench FFT                 | 3          |
//! | `susan`     | MiBench susan               | 12         |
//!
//! Each [`Benchmark`] carries its source, parameter metadata, an input
//! generator, and an annotation rule that resolves the dummy parameters
//! its analysis produces (§3.4 of the paper).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod adpcm;
mod fftprog;
mod g721;
mod susanprog;

use offload_core::{
    Analysis, AnalysisOptions, AnalyzeError, Annotations, ParamBounds, SolveOptions,
};
use offload_poly::Rational;
use offload_symbolic::{DummyOrigin, SymExpr, Symbolic};

/// A benchmark program with everything needed to analyze and run it.
pub struct Benchmark {
    /// Program name (matches the paper's Table 3).
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// Mini-C source text.
    pub source: String,
    /// Parameter names, in `main` order.
    pub param_names: Vec<&'static str>,
    /// Inclusive parameter bounds for the parametric analysis.
    pub bounds: ParamBounds,
    /// A representative parameter assignment.
    pub default_params: Vec<i64>,
    /// Builds the input stream for a parameter assignment.
    pub make_input: fn(&[i64]) -> Vec<i64>,
    /// Resolves this benchmark's non-auto dummies (user annotations).
    pub annotate: fn(&Symbolic) -> Annotations,
}

impl Benchmark {
    /// Lines of source (Table 3's "No. of Source Lines").
    pub fn source_lines(&self) -> usize {
        self.source.lines().filter(|l| !l.trim().is_empty()).count()
    }

    /// Runs the full parametric analysis with this benchmark's bounds and
    /// annotations (polynomial annotations are substituted before
    /// partitioning, per §3.4).
    ///
    /// # Errors
    ///
    /// Propagates analysis failures.
    pub fn analyze(&self) -> Result<Analysis, AnalyzeError> {
        self.analyze_with(SolveOptions::default())
    }

    /// Like [`Benchmark::analyze`], but with caller-supplied solver
    /// options (thread count, cut cache, logging). The benchmark's
    /// preferred region strategy still takes precedence.
    ///
    /// # Errors
    ///
    /// Propagates analysis failures.
    pub fn analyze_with(&self, mut solve: SolveOptions) -> Result<Analysis, AnalyzeError> {
        // The G.721 codecs, fft and susan produce networks of the size
        // for which the paper's exact region computation took thousands
        // of seconds; use the dominance-probing strategy there (see
        // `RegionStrategy::Dominance`). The ADPCM programs stay on the
        // exact Lemma 1 path.
        if matches!(self.name, "encode" | "decode" | "susan" | "fft") {
            solve.region_strategy = offload_core::RegionStrategy::Dominance;
        }
        let builder = AnalysisOptions::builder()
            .bounds(self.bounds.clone())
            .annotate_with(self.annotate)
            .solve(solve);
        Analysis::from_source(&self.source, builder.build())
    }
}

/// The standard annotation policy for the audio/image benchmarks:
/// data-dependent branch frequencies default to ½, data-dependent trip
/// counts to a small constant (the codec segment loops run 0–7 times),
/// dynamic sizes to a page. These mirror the kind of per-program
/// annotations the paper's Table 4 counts.
pub fn default_annotations(sym: &Symbolic) -> Annotations {
    use offload_core::AnnotationRule;
    annotate_by_origin(sym, |_, origin| {
        Some(AnnotationRule::Expr(match origin {
            DummyOrigin::BranchFreq { .. } => SymExpr::constant(offload_poly::Rational::new(1, 2)),
            DummyOrigin::TripCount { .. } => SymExpr::int(4),
            DummyOrigin::AllocSize { .. } => SymExpr::int(64),
            DummyOrigin::Recursion { .. } => SymExpr::int(16),
            DummyOrigin::AutoCond { .. } => return None,
        }))
    })
}

/// Deterministic pseudo-random stream (xorshift, pure integers) used by
/// the input generators.
pub fn prng_stream(seed: u64, len: usize, modulus: i64) -> Vec<i64> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        out.push((state % modulus as u64) as i64 - modulus / 2);
    }
    out
}

/// Annotation helper: resolve every remaining (non-auto) dummy with a
/// rule chosen by its origin.
pub fn annotate_by_origin(
    symbolic: &Symbolic,
    mut rule: impl FnMut(u32, &DummyOrigin) -> Option<offload_core::AnnotationRule>,
) -> Annotations {
    let mut out = Annotations::default();
    for (i, origin) in symbolic.dict.dummies().iter().enumerate() {
        if origin.is_auto() {
            continue;
        }
        if let Some(r) = rule(i as u32, origin) {
            out.exprs.insert(i as u32, r);
        }
    }
    out
}

/// `ceil(log2(max(params[0], 1)))` — the annotation for doubling loops
/// over the first parameter.
pub fn log2_of_param0(params: &[Rational]) -> Rational {
    let v = params.first().map(|r| r.to_f64()).unwrap_or(1.0).max(1.0);
    Rational::from(v.log2().ceil() as i64)
}

/// Same for the second parameter.
pub fn log2_of_param1(params: &[Rational]) -> Rational {
    let v = params.get(1).map(|r| r.to_f64()).unwrap_or(1.0).max(1.0);
    Rational::from(v.log2().ceil() as i64)
}

pub use adpcm::{rawcaudio, rawdaudio};
pub use fftprog::fft;
pub use g721::{decode, encode};
pub use susanprog::susan;

/// All six benchmarks, in Table 3 order.
pub fn all() -> Vec<Benchmark> {
    vec![rawcaudio(), rawdaudio(), encode(), decode(), fft(), susan()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sources_compile() {
        for b in all() {
            offload_lang::frontend(&b.source).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        }
    }

    #[test]
    fn param_counts_match_table3() {
        let expect = [
            ("rawcaudio", 1),
            ("rawdaudio", 1),
            ("encode", 4),
            ("decode", 4),
            ("fft", 3),
            ("susan", 12),
        ];
        for (b, (name, params)) in all().iter().zip(expect) {
            assert_eq!(b.name, name);
            assert_eq!(b.param_names.len(), params, "{name}");
            let checked = offload_lang::frontend(&b.source).unwrap();
            assert_eq!(
                checked.program.main().unwrap().params.len(),
                params,
                "{name}: main arity"
            );
        }
    }

    #[test]
    fn prng_is_deterministic() {
        assert_eq!(prng_stream(42, 8, 1000), prng_stream(42, 8, 1000));
        assert_ne!(prng_stream(42, 8, 1000), prng_stream(43, 8, 1000));
    }
}
