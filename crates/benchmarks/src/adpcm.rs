//! `rawcaudio` / `rawdaudio` — IMA ADPCM speech compression and
//! decompression (Mediabench). One parameter: the input size in samples.
//!
//! The step-size table is generated at startup with the standard ~1.1×
//! geometric progression instead of a literal table (the mini language
//! has no array initializers); encoder and decoder share it, so
//! compress→decompress round-trips behave like the original codec.

use crate::Benchmark;
use offload_core::ParamBounds;

/// Shared codec helpers (tables + per-sample kernels).
fn codec_common() -> &'static str {
    r#"
int steptab[89];
int state_val;
int state_idx;

void init_tables() {
    int i;
    int s;
    s = 7;
    for (i = 0; i < 89; i++) {
        steptab[i] = s;
        s = s + s / 10 + 1;
    }
    state_val = 0;
    state_idx = 0;
}

int index_adjust(int code) {
    int c;
    c = code % 8;
    if (c < 4) { return -1; }
    if (c == 4) { return 2; }
    if (c == 5) { return 4; }
    if (c == 6) { return 6; }
    return 8;
}

int clamp_state() {
    if (state_val > 32767) { state_val = 32767; }
    if (state_val < -32768) { state_val = -32768; }
    if (state_idx < 0) { state_idx = 0; }
    if (state_idx > 88) { state_idx = 88; }
    return 0;
}
"#
}

fn encoder_kernel() -> &'static str {
    r#"
int encode_sample(int sample) {
    int step;
    int diff;
    int code;
    int vpdiff;
    int sign;
    step = steptab[state_idx];
    diff = sample - state_val;
    if (diff < 0) { sign = 8; diff = -diff; } else { sign = 0; }
    code = 0;
    vpdiff = step / 8;
    if (diff >= step) { code = 4; diff = diff - step; vpdiff = vpdiff + step; }
    step = step / 2;
    if (diff >= step) { code = code + 2; diff = diff - step; vpdiff = vpdiff + step; }
    step = step / 2;
    if (diff >= step) { code = code + 1; vpdiff = vpdiff + step; }
    if (sign == 8) { state_val = state_val - vpdiff; } else { state_val = state_val + vpdiff; }
    clamp_state();
    state_idx = state_idx + index_adjust(code);
    clamp_state();
    return code + sign;
}
"#
}

fn decoder_kernel() -> &'static str {
    r#"
int decode_sample(int in) {
    int step;
    int code;
    int sign;
    int vpdiff;
    step = steptab[state_idx];
    code = in % 8;
    sign = in / 8;
    vpdiff = step / 8;
    if (code >= 4) { vpdiff = vpdiff + step; }
    if (code % 4 >= 2) { vpdiff = vpdiff + step / 2; }
    if (code % 2 == 1) { vpdiff = vpdiff + step / 4; }
    if (sign == 1) { state_val = state_val - vpdiff; } else { state_val = state_val + vpdiff; }
    clamp_state();
    state_idx = state_idx + index_adjust(code);
    clamp_state();
    return state_val;
}
"#
}

/// The `rawcaudio` benchmark: ADPCM speech compression.
pub fn rawcaudio() -> Benchmark {
    let source = format!(
        "{}{}
void main(int n) {{
    int i;
    int s;
    init_tables();
    for (i = 0; i < n; i++) {{
        s = input();
        output(encode_sample(s));
    }}
}}
",
        codec_common(),
        encoder_kernel()
    );
    Benchmark {
        name: "rawcaudio",
        description: "ADPCM in Mediabench, Speech Compression",
        source,
        param_names: vec!["n"],
        bounds: ParamBounds::uniform(1, 1, None),
        default_params: vec![2048],
        make_input: |params| crate::prng_stream(0xC0FFEE, params[0].max(0) as usize, 20000),
        annotate: crate::default_annotations,
    }
}

/// The `rawdaudio` benchmark: ADPCM speech decompression.
pub fn rawdaudio() -> Benchmark {
    let source = format!(
        "{}{}
void main(int n) {{
    int i;
    int c;
    init_tables();
    for (i = 0; i < n; i++) {{
        c = input();
        output(decode_sample(c));
    }}
}}
",
        codec_common(),
        decoder_kernel()
    );
    Benchmark {
        name: "rawdaudio",
        description: "ADPCM in Mediabench, Speech Decompression",
        source,
        param_names: vec!["n"],
        bounds: ParamBounds::uniform(1, 1, None),
        default_params: vec![2048],
        make_input: |params| {
            crate::prng_stream(0xDECADE, params[0].max(0) as usize, 16)
                .into_iter()
                .map(|v| v + 8) // 4-bit codes 0..15
                .collect()
        },
        annotate: crate::default_annotations,
    }
}
