//! `susan` — photo smoothing, edge recognition and corner recognition
//! (MiBench).
//!
//! Twelve parameters, like the paper's version (10 command options plus
//! the photo dimensions):
//!
//! | # | name      | meaning                                    |
//! |---|-----------|--------------------------------------------|
//! | 0 | `mode_s`  | perform smoothing (`-s`)                   |
//! | 1 | `mode_e`  | recognize edges (`-e`)                     |
//! | 2 | `mode_c`  | recognize corners (`-c`)                   |
//! | 3 | `xdim`    | photo width                                |
//! | 4 | `ydim`    | photo height                               |
//! | 5 | `bt`      | brightness threshold                       |
//! | 6 | `dt`      | distance (geometric) threshold             |
//! | 7 | `mask`    | smoothing mask radius                      |
//! | 8 | `iters`   | smoothing iterations                       |
//! | 9 | `corner_t`| corner USAN threshold                      |
//! |10 | `stride`  | output sampling stride                     |
//! |11 | `gain`    | output gain divisor                        |

use crate::Benchmark;
use offload_core::ParamBounds;

fn source() -> String {
    r#"
int img[16900];
int tmp[16900];
int outp[16900];

// Box-mask smoothing with the given radius, repeated `iters` times.
void smooth(int xdim, int ydim, int mask, int iters) {
    int it;
    int x;
    int y;
    int dx;
    int dy;
    int acc;
    int cnt;
    for (it = 0; it < iters; it++) {
        for (y = 0; y < ydim; y++) {
            for (x = 0; x < xdim; x++) {
                acc = 0;
                cnt = 0;
                for (dy = -mask; dy <= mask; dy++) {
                    for (dx = -mask; dx <= mask; dx++) {
                        if (y + dy >= 0 && y + dy < ydim && x + dx >= 0 && x + dx < xdim) {
                            acc = acc + img[(y + dy) * xdim + x + dx];
                            cnt = cnt + 1;
                        }
                    }
                }
                if (cnt > 0) { tmp[y * xdim + x] = acc / cnt; }
            }
        }
        for (y = 0; y < ydim; y++) {
            for (x = 0; x < xdim; x++) {
                img[y * xdim + x] = tmp[y * xdim + x];
            }
        }
    }
}

// USAN similarity: full weight when within the brightness threshold.
int similar(int a, int b, int bt) {
    int d;
    d = a - b;
    if (d < 0) { d = -d; }
    if (d <= bt) { return 100; }
    if (d <= 2 * bt) { return 50; }
    return 0;
}

// Edge response: small USAN area (few similar neighbours) = edge.
void edges(int xdim, int ydim, int bt, int dt, int gain) {
    int x;
    int y;
    int dx;
    int dy;
    int usan;
    int center;
    int geom;
    for (y = 0; y < ydim; y++) {
        for (x = 0; x < xdim; x++) {
            center = img[y * xdim + x];
            usan = 0;
            for (dy = -3; dy <= 3; dy++) {
                for (dx = -3; dx <= 3; dx++) {
                    geom = dx * dx + dy * dy;
                    if (geom <= dt * dt) {
                        if (y + dy >= 0 && y + dy < ydim && x + dx >= 0 && x + dx < xdim) {
                            usan = usan + similar(center, img[(y + dy) * xdim + x + dx], bt);
                        }
                    }
                }
            }
            outp[y * xdim + x] = usan / gain;
        }
    }
}

// Corner response: USAN below the corner threshold = candidate corner.
void corners(int xdim, int ydim, int bt, int corner_t, int gain) {
    int x;
    int y;
    int dx;
    int dy;
    int usan;
    int center;
    for (y = 0; y < ydim; y++) {
        for (x = 0; x < xdim; x++) {
            center = img[y * xdim + x];
            usan = 0;
            for (dy = -2; dy <= 2; dy++) {
                for (dx = -2; dx <= 2; dx++) {
                    if (y + dy >= 0 && y + dy < ydim && x + dx >= 0 && x + dx < xdim) {
                        usan = usan + similar(center, img[(y + dy) * xdim + x + dx], bt);
                    }
                }
            }
            if (usan < corner_t) {
                outp[y * xdim + x] = (corner_t - usan) / gain;
            } else {
                outp[y * xdim + x] = 0;
            }
        }
    }
}

void main(int mode_s, int mode_e, int mode_c, int xdim, int ydim, int bt,
          int dt, int mask, int iters, int corner_t, int stride, int gain) {
    int i;
    int total;
    total = xdim * ydim;
    for (i = 0; i < total; i++) {
        img[i] = input();
    }
    for (i = 0; i < total; i++) {
        outp[i] = img[i];
    }
    if (mode_s == 1) {
        smooth(xdim, ydim, mask, iters);
        for (i = 0; i < total; i++) {
            outp[i] = img[i];
        }
    }
    if (mode_e == 1) {
        edges(xdim, ydim, bt, dt, gain);
    }
    if (mode_c == 1) {
        corners(xdim, ydim, bt, corner_t, gain);
    }
    for (i = 0; i < total; i = i + stride) {
        output(outp[i]);
    }
}
"#
    .to_string()
}

/// The `susan` benchmark.
pub fn susan() -> Benchmark {
    Benchmark {
        name: "susan",
        description: "susan in MiBench, Photo Processing",
        source: source(),
        param_names: vec![
            "mode_s", "mode_e", "mode_c", "xdim", "ydim", "bt", "dt", "mask", "iters", "corner_t",
            "stride", "gain",
        ],
        bounds: ParamBounds {
            per_param: vec![
                (Some(0), Some(1)),    // mode_s
                (Some(0), Some(1)),    // mode_e
                (Some(0), Some(1)),    // mode_c
                (Some(1), Some(130)),  // xdim
                (Some(1), Some(130)),  // ydim
                (Some(1), Some(100)),  // bt
                (Some(1), Some(3)),    // dt
                (Some(1), Some(4)),    // mask
                (Some(1), Some(4)),    // iters
                (Some(1), Some(2500)), // corner_t
                (Some(1), Some(64)),   // stride
                (Some(1), Some(100)),  // gain
            ],
        },
        default_params: vec![0, 1, 0, 64, 64, 20, 2, 1, 1, 1200, 16, 10],
        make_input: |params| {
            let total = (params[3].max(0) * params[4].max(0)) as usize;
            crate::prng_stream(0x5A5A, total, 256)
                .into_iter()
                .map(|v| v.rem_euclid(256))
                .collect()
        },
        annotate: crate::default_annotations,
    }
}
