//! `encode` / `decode` — G.721-style CCITT voice compression
//! (Mediabench), modified like the paper's version to use buffered I/O
//! with the buffer size as an extra run-time parameter.
//!
//! Four parameters, mirroring the paper's command options:
//!
//! * `method` — coding rate: 3 (G.723 24kbps), 4 (G.721 32kbps) or
//!   5 (G.723 40kbps) bits per sample (selected through a function
//!   pointer, like the original's coder dispatch);
//! * `law` — audio format: 0 linear PCM (`-l`), 1 a-law (`-a`),
//!   2 u-law (`-u`);
//! * `bufsz` — I/O buffer size (the parameter Figure 10 sweeps);
//! * `nbuf` — number of buffers to process.

use crate::Benchmark;
use offload_core::ParamBounds;

fn predictor_common() -> &'static str {
    r#"
int inbuf[4096];
int linbuf[4096];
int outbuf[4096];
int steptab[89];
int state_val;
int state_idx;

void init_tables() {
    int i;
    int s;
    s = 7;
    for (i = 0; i < 89; i++) {
        steptab[i] = s;
        s = s + s / 10 + 1;
    }
    state_val = 0;
    state_idx = 0;
}

int clamp_state() {
    if (state_val > 32767) { state_val = 32767; }
    if (state_val < -32768) { state_val = -32768; }
    if (state_idx < 0) { state_idx = 0; }
    if (state_idx > 88) { state_idx = 88; }
    return 0;
}

// Segmented companding expansion: law 0 = linear, 1 = a-law-like,
// 2 = u-law-like. The u-law branch does the most per-sample work,
// matching the real codec's conversion costs.
int expand(int v, int law) {
    int seg;
    int mant;
    int mag;
    int sign;
    if (law == 0) { return v; }
    if (v < 0) { sign = -1; mag = -v; } else { sign = 1; mag = v; }
    mag = mag % 128;
    seg = mag / 16;
    mant = mag % 16;
    if (law == 1) {
        // a-law: value = (mant*2 + 33) << seg  (shift via doubling loop)
        int val;
        int k;
        val = mant * 2 + 33;
        for (k = 0; k < seg; k++) { val = val * 2; }
        return sign * (val - 33);
    }
    // u-law: value = ((mant*2 + 33) << seg) - 33, with bias correction
    {
        int val;
        int k;
        val = mant * 2 + 33;
        for (k = 0; k < seg; k++) { val = val * 2; }
        val = val - 33;
        val = val + val / 64;
        return sign * val;
    }
}

// Adaptive quantization of a difference to `bits` bits: the loop over
// bit positions makes per-sample work scale with the coding rate.
int quantize(int diff, int bits) {
    int step;
    int code;
    int vpdiff;
    int sign;
    int b;
    int mask;
    step = steptab[state_idx];
    if (diff < 0) { sign = 1; diff = -diff; } else { sign = 0; }
    code = 0;
    vpdiff = step / 8;
    mask = 4;
    for (b = 1; b < bits; b++) {
        if (diff >= step) {
            code = code + mask;
            diff = diff - step;
            vpdiff = vpdiff + step;
        }
        step = step / 2;
        mask = mask / 2;
        if (mask == 0) { mask = 1; }
    }
    if (sign == 1) { state_val = state_val - vpdiff; } else { state_val = state_val + vpdiff; }
    clamp_state();
    if (code >= 4) { state_idx = state_idx + 2 * (code / 4); } else { state_idx = state_idx - 1; }
    clamp_state();
    if (sign == 1) { return code + 64; }
    return code;
}

int dequantize(int code, int bits) {
    int step;
    int vpdiff;
    int sign;
    int b;
    int mask;
    int c;
    step = steptab[state_idx];
    sign = code / 64;
    c = code % 64;
    vpdiff = step / 8;
    mask = 4;
    for (b = 1; b < bits; b++) {
        if (c >= mask && mask > 0) {
            vpdiff = vpdiff + step;
            c = c - mask;
        }
        step = step / 2;
        mask = mask / 2;
        if (mask == 0) { mask = 1; }
    }
    if (sign == 1) { state_val = state_val - vpdiff; } else { state_val = state_val + vpdiff; }
    clamp_state();
    c = code % 64;
    if (c >= 4) { state_idx = state_idx + 2 * (c / 4); } else { state_idx = state_idx - 1; }
    clamp_state();
    return state_val;
}
"#
}

fn coder_funcs(encode: bool) -> String {
    let (verb, kernel) = if encode {
        ("coder", "quantize(linbuf[i] - state_val, BITS)")
    } else {
        ("coder", "dequantize(linbuf[i], BITS)")
    };
    let mut out = String::new();
    for bits in [3, 4, 5] {
        out.push_str(&format!(
            r#"
void {verb}{bits}(int count) {{
    int i;
    for (i = 0; i < count; i++) {{
        outbuf[i] = {};
    }}
}}
"#,
            kernel.replace("BITS", &bits.to_string())
        ));
    }
    out
}

fn main_src() -> &'static str {
    r#"
void main(int method, int law, int bufsz, int nbuf) {
    int f;
    int i;
    fn g;
    init_tables();
    if (method == 3) { g = &coder3; } else {
        if (method == 5) { g = &coder5; } else { g = &coder4; }
    }
    for (f = 0; f < nbuf; f++) {
        for (i = 0; i < bufsz; i++) {
            inbuf[i] = input();
        }
        for (i = 0; i < bufsz; i++) {
            linbuf[i] = expand(inbuf[i], law);
        }
        g(bufsz);
        for (i = 0; i < bufsz; i++) {
            output(outbuf[i]);
        }
    }
}
"#
}

fn bounds() -> ParamBounds {
    ParamBounds {
        per_param: vec![
            (Some(3), Some(5)),    // method
            (Some(0), Some(2)),    // law
            (Some(1), Some(4096)), // bufsz
            (Some(1), None),       // nbuf
        ],
    }
}

/// The `encode` benchmark: G.721-style compression.
pub fn encode() -> Benchmark {
    let source = format!("{}{}{}", predictor_common(), coder_funcs(true), main_src());
    Benchmark {
        name: "encode",
        description: "G.721 in Mediabench, CCITT Voice Compression",
        source,
        param_names: vec!["method", "law", "bufsz", "nbuf"],
        bounds: bounds(),
        default_params: vec![4, 0, 256, 8],
        make_input: |params| {
            let total = (params[2].max(0) * params[3].max(0)) as usize;
            crate::prng_stream(0x6721, total, 120)
        },
        annotate: crate::default_annotations,
    }
}

/// The `decode` benchmark: G.721-style decompression.
pub fn decode() -> Benchmark {
    let source = format!("{}{}{}", predictor_common(), coder_funcs(false), main_src());
    Benchmark {
        name: "decode",
        description: "G.721 in Mediabench, CCITT Voice Decompression",
        source,
        param_names: vec!["method", "law", "bufsz", "nbuf"],
        bounds: bounds(),
        default_params: vec![4, 0, 256, 8],
        make_input: |params| {
            let total = (params[2].max(0) * params[3].max(0)) as usize;
            crate::prng_stream(0xDEC0DE, total, 32)
                .into_iter()
                .map(|v| v.rem_euclid(32))
                .collect()
        },
        annotate: crate::default_annotations,
    }
}
