//! `fft` — discrete fast Fourier transform (MiBench).
//!
//! Three parameters, mirroring the paper's command options: the number of
//! sinusoids mixed into the synthetic waveform, the number of samples
//! (a power of two), and the inverse-transform flag.
//!
//! Everything is integer arithmetic: a quarter-wave sine table built with
//! Bhaskara's approximation, Q12 fixed-point butterflies, and a doubling
//! outer loop whose `log2(n)` trip count is exactly the kind of quantity
//! the paper's analysis cannot express — it becomes a dummy parameter
//! that needs a user annotation (Table 4 credits `fft` with 3
//! annotations).

use crate::{annotate_by_origin, log2_of_param1, Benchmark};
use offload_core::{AnnotationRule, ParamBounds};
use offload_symbolic::DummyOrigin;

fn source() -> String {
    r#"
int re[16384];
int im[16384];
int sintab[1025];

// Quarter-wave sine table, Q12: sintab[i] ~ 4096*sin(pi/2 * i/1024),
// via Bhaskara's rational approximation in pure integers.
void init_sin() {
    int i;
    int x;
    int num;
    int den;
    for (i = 0; i <= 1024; i++) {
        x = i * 90 / 1024;
        num = 4 * x * (180 - x);
        den = 40500 - x * (180 - x);
        sintab[i] = 4096 * num / den;
    }
}

// sin(2*pi*k/n) in Q12 for 0 <= k < n, by quarter-wave symmetry.
int qsin(int k, int n) {
    int quarter;
    int pos;
    int idx;
    quarter = 4 * k / n;
    pos = 4 * k % n;
    idx = pos * 1024 / n;
    if (quarter == 0) { return sintab[idx]; }
    if (quarter == 1) { return sintab[1024 - idx]; }
    if (quarter == 2) { return -sintab[idx]; }
    return -sintab[1024 - idx];
}

int qcos(int k, int n) {
    return qsin(k + n / 4, n);
}

// Synthesize the test waveform: a sum of `nsin` harmonics.
void gen_wave(int nsin, int n) {
    int s;
    int i;
    for (i = 0; i < n; i++) {
        re[i] = 0;
        im[i] = 0;
    }
    for (s = 1; s <= nsin; s++) {
        for (i = 0; i < n; i++) {
            re[i] = re[i] + qsin(s * i % n, n) / s;
        }
    }
}

// In-place bit-reversal permutation.
void bit_reverse(int n) {
    int i;
    int j;
    int k;
    int t;
    j = 0;
    for (i = 0; i < n; i++) {
        if (i < j) {
            t = re[i]; re[i] = re[j]; re[j] = t;
            t = im[i]; im[i] = im[j]; im[j] = t;
        }
        k = n / 2;
        while (k >= 1 && j >= k) {
            j = j - k;
            k = k / 2;
        }
        j = j + k;
    }
}

// Radix-2 butterflies; `inv` selects the inverse transform. Each pass
// processes exactly n/2 butterfly pairs (an analyzable trip count); only
// the number of passes — log2(n) — needs a user annotation.
void fft_passes(int n, int inv) {
    int len;
    int half;
    int pair;
    int start;
    int k;
    int wr;
    int wi;
    int ur;
    int ui;
    int tr;
    int ti;
    int idx;
    len = 2;
    while (len <= n) {
        half = len / 2;
        for (pair = 0; pair < n / 2; pair++) {
            start = (pair / half) * len;
            k = pair % half;
            idx = k * (n / len);
            wr = qcos(idx, n);
            if (inv == 1) { wi = qsin(idx, n); } else { wi = -qsin(idx, n); }
            ur = re[start + k];
            ui = im[start + k];
            tr = (wr * re[start + k + half] - wi * im[start + k + half]) / 4096;
            ti = (wr * im[start + k + half] + wi * re[start + k + half]) / 4096;
            re[start + k] = ur + tr;
            im[start + k] = ui + ti;
            re[start + k + half] = ur - tr;
            im[start + k + half] = ui - ti;
        }
        len = len * 2;
    }
}

void main(int nsin, int n, int inv) {
    int i;
    int step;
    init_sin();
    gen_wave(nsin, n);
    bit_reverse(n);
    fft_passes(n, inv);
    if (inv == 1) {
        for (i = 0; i < n; i++) {
            re[i] = re[i] / n;
            im[i] = im[i] / n;
        }
    }
    step = n / 16;
    if (step < 1) { step = 1; }
    for (i = 0; i < n; i = i + step) {
        output(re[i]);
        output(im[i]);
    }
}
"#
    .to_string()
}

/// The `fft` benchmark.
pub fn fft() -> Benchmark {
    Benchmark {
        name: "fft",
        description: "FFT in MiBench, Discrete Fast Fourier Transforms",
        source: source(),
        param_names: vec!["nsin", "n", "inv"],
        bounds: ParamBounds {
            per_param: vec![
                (Some(1), Some(64)),    // sinusoids
                (Some(4), Some(16384)), // samples
                (Some(0), Some(1)),     // inverse flag
            ],
        },
        default_params: vec![4, 1024, 0],
        make_input: |_| Vec::new(),
        annotate: |sym| {
            annotate_by_origin(sym, |_, origin| match origin {
                // The doubling pass loop runs log2(n) times (a quantity no
                // polynomial expresses: an annotation *function* of the
                // parameters, kept as a dispatch-time dimension).
                DummyOrigin::TripCount { .. } => Some(AnnotationRule::Func(log2_of_param1)),
                // Data-dependent branches (bit-reversal carries): ~50%.
                DummyOrigin::BranchFreq { .. } => Some(AnnotationRule::Expr(
                    offload_symbolic::SymExpr::constant(offload_poly::Rational::new(1, 2)),
                )),
                _ => None,
            })
        },
    }
}
