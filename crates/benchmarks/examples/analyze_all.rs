//! Developer tool: analyze every benchmark (optionally filtered by a
//! name argument) and print Table-4-style statistics.

use offload_benchmarks::all;
use std::time::Instant;

fn main() {
    let filter = std::env::args().nth(1);
    for b in all() {
        if let Some(f) = &filter {
            if b.name != f {
                continue;
            }
        }
        let t = Instant::now();
        match b.analyze() {
            Ok(a) => {
                eprintln!(
                    "{:<10} tasks={:<3} items={:<3} nodes={}->{} choices={} dummies={} missing={:?} time={:?}",
                    b.name,
                    a.tcfg.tasks().len(),
                    a.items.items.len(),
                    a.partition.stats.nodes_before,
                    a.partition.stats.nodes_after,
                    a.partition.choices.len(),
                    a.symbolic.dict.dummies().len(),
                    a.missing_annotations(),
                    t.elapsed(),
                );
            }
            Err(e) => eprintln!("{:<10} ERROR after {:?}: {e}", b.name, t.elapsed()),
        }
    }
}
