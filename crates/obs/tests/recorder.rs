//! Recorder and metrics behaviour: span nesting across scoped worker
//! threads, histogram percentile accuracy, Chrome-trace JSON validity,
//! and the disabled-path overhead bound.
//!
//! The recorder is process-global, so every test that records or resets
//! serializes on one mutex.

use offload_obs::{
    counter, event, export, histogram, reset, set_enabled, snapshot, span, span_summary, EventKind,
};
use std::sync::Mutex;

static RECORDER_LOCK: Mutex<()> = Mutex::new(());

fn exclusive() -> std::sync::MutexGuard<'static, ()> {
    RECORDER_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn spans_nest_across_scoped_workers() {
    let _guard = exclusive();
    set_enabled(true);
    reset();

    {
        let mut outer = span!("test", "outer", workers = 3u64,);
        std::thread::scope(|s| {
            for i in 0..3u64 {
                s.spawn(move || {
                    let _w = span!("test", "worker", index = i,);
                    let _inner = span!("test", "inner_unit");
                });
            }
        });
        outer.record("done", true);
    }

    set_enabled(false);
    let summary = span_summary();
    let count = |cat: &str, name: &str| {
        summary
            .entries
            .iter()
            .find(|e| e.cat == cat && e.name == name)
            .map(|e| e.count)
            .unwrap_or(0)
    };
    assert_eq!(count("test", "outer"), 1);
    assert_eq!(count("test", "worker"), 3);
    assert_eq!(count("test", "inner_unit"), 3);

    // Each worker thread holds its own shard: a worker span and its
    // nested inner span land on the same timeline in begin/begin/end/end
    // order, never interleaved with another worker's events.
    let threads = snapshot();
    let worker_threads: Vec<_> = threads
        .iter()
        .filter(|t| t.events.iter().any(|e| e.name == "worker"))
        .collect();
    assert_eq!(worker_threads.len(), 3, "one shard per scoped worker");
    for t in worker_threads {
        let kinds: Vec<EventKind> = t.events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::Begin,
                EventKind::Begin,
                EventKind::End,
                EventKind::End
            ],
            "thread {} events are properly nested",
            t.name
        );
    }
    reset();
}

#[test]
fn end_fields_attach_to_the_end_event() {
    let _guard = exclusive();
    set_enabled(true);
    reset();
    {
        let mut s = span!("test", "recorded", input = 7u64,);
        s.record("output", 21u64);
    }
    set_enabled(false);
    let threads = snapshot();
    let events: Vec<_> = threads.iter().flat_map(|t| &t.events).collect();
    let begin = events
        .iter()
        .find(|e| e.kind == EventKind::Begin)
        .expect("begin");
    let end = events
        .iter()
        .find(|e| e.kind == EventKind::End)
        .expect("end");
    assert!(begin.fields.iter().any(|(k, _)| *k == "input"));
    assert!(end.fields.iter().any(|(k, _)| *k == "output"));
    reset();
}

#[test]
fn histogram_percentiles_on_known_distribution() {
    // 1..=1000 uniformly: every estimate must respect the power-of-two
    // bucket guarantee (within 2x of the true percentile).
    let h = histogram("test.uniform_1k");
    for v in 1..=1000u64 {
        h.record(v);
    }
    let s = h.summary();
    assert_eq!(s.count, 1000);
    assert_eq!(s.sum, 500_500);
    assert_eq!(s.max, 1000);
    for (est, truth) in [(s.p50, 500u64), (s.p90, 900), (s.p99, 990)] {
        assert!(
            est >= truth / 2 && est <= truth * 2,
            "estimate {est} not within 2x of true percentile {truth}"
        );
    }
    // Monotone: p50 <= p90 <= p99 <= max.
    assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max);

    // A point mass lands exactly on its bucket's range.
    let h = histogram("test.point_mass");
    for _ in 0..100 {
        h.record(64);
    }
    let s = h.summary();
    assert_eq!(s.max, 64);
    for q in [s.p50, s.p90, s.p99] {
        assert!(
            (64..128).contains(&q),
            "point mass quantile {q} outside its bucket"
        );
    }
}

#[test]
fn counters_accumulate() {
    let c = counter("test.counter");
    let before = c.get();
    c.inc();
    c.add(9);
    assert_eq!(counter("test.counter").get(), before + 10);
}

/// A minimal JSON validator: walks the value grammar and returns the
/// rest of the input. Strict enough to catch unbalanced brackets,
/// missing commas/colons, and unescaped control characters.
fn skip_json(s: &[u8], mut i: usize) -> Result<usize, String> {
    fn ws(s: &[u8], mut i: usize) -> usize {
        while i < s.len() && (s[i] as char).is_ascii_whitespace() {
            i += 1;
        }
        i
    }
    i = ws(s, i);
    let Some(&c) = s.get(i) else {
        return Err("eof".into());
    };
    match c {
        b'{' | b'[' => {
            let close = if c == b'{' { b'}' } else { b']' };
            i += 1;
            i = ws(s, i);
            if s.get(i) == Some(&close) {
                return Ok(i + 1);
            }
            loop {
                if c == b'{' {
                    i = skip_json(s, i)?; // key
                    i = ws(s, i);
                    if s.get(i) != Some(&b':') {
                        return Err(format!("expected ':' at {i}"));
                    }
                    i += 1;
                }
                i = skip_json(s, i)?;
                i = ws(s, i);
                match s.get(i) {
                    Some(&b',') => i += 1,
                    Some(&x) if x == close => return Ok(i + 1),
                    other => return Err(format!("expected ',' or close at {i}: {other:?}")),
                }
            }
        }
        b'"' => {
            i += 1;
            while let Some(&b) = s.get(i) {
                match b {
                    b'"' => return Ok(i + 1),
                    b'\\' => i += 2,
                    0x00..=0x1f => return Err(format!("raw control byte at {i}")),
                    _ => i += 1,
                }
            }
            Err("unterminated string".into())
        }
        b't' => s[i..]
            .starts_with(b"true")
            .then(|| i + 4)
            .ok_or("bad literal".into()),
        b'f' => s[i..]
            .starts_with(b"false")
            .then(|| i + 5)
            .ok_or("bad literal".into()),
        b'n' => s[i..]
            .starts_with(b"null")
            .then(|| i + 4)
            .ok_or("bad literal".into()),
        _ => {
            let start = i;
            while i < s.len() && matches!(s[i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
                i += 1;
            }
            if i == start {
                Err(format!("unexpected byte {c} at {i}"))
            } else {
                Ok(i)
            }
        }
    }
}

fn assert_valid_json(text: &str) {
    let bytes = text.as_bytes();
    let end = skip_json(bytes, 0).unwrap_or_else(|e| panic!("invalid JSON: {e}\n{text}"));
    assert!(
        bytes[end..]
            .iter()
            .all(|b| (*b as char).is_ascii_whitespace()),
        "trailing garbage after JSON document"
    );
}

#[test]
fn chrome_trace_is_valid_json_with_required_fields() {
    let _guard = exclusive();
    set_enabled(true);
    reset();
    {
        let _a = span!("alpha", "outer", note = "quote \" backslash \\ newline \n",);
        let _b = span!("beta", "inner", n = 3u64,);
        event!("gamma", "ping", ok = true,);
    }
    set_enabled(false);
    let threads = snapshot();
    let json = export::chrome_trace_json(&threads);
    assert_valid_json(&json);
    // Chrome's JSON Object Format essentials.
    assert!(json.starts_with("{\"traceEvents\":["));
    for key in [
        "\"ph\":\"B\"",
        "\"ph\":\"E\"",
        "\"ph\":\"i\"",
        "\"ph\":\"M\"",
    ] {
        assert!(json.contains(key), "missing {key}");
    }
    for key in [
        "\"pid\":",
        "\"tid\":",
        "\"ts\":",
        "\"cat\":\"alpha\"",
        "\"cat\":\"beta\"",
    ] {
        assert!(json.contains(key), "missing {key}");
    }
    // Escapes survived.
    assert!(json.contains("quote \\\" backslash \\\\ newline \\n"));

    // The JSON-lines exporter parses line by line.
    for line in export::jsonl(&threads).lines() {
        assert_valid_json(line);
    }
    reset();
}

#[test]
fn disabled_recorder_costs_nanoseconds() {
    let _guard = exclusive();
    set_enabled(false);
    const N: u32 = 200_000;
    let start = std::time::Instant::now();
    for _ in 0..N {
        let g = span!("test", "off");
        std::hint::black_box(&g);
    }
    let per_call = start.elapsed().as_nanos() as f64 / f64::from(N);
    // One relaxed atomic load. Generous bound (debug builds, loaded CI
    // machines): a microsecond per call would still pass, real cost is
    // single-digit nanoseconds.
    assert!(per_call < 1000.0, "disabled span cost {per_call} ns/call");
}

#[test]
fn metric_totals_equal_across_thread_counts() {
    // The same work split over 1 vs 4 threads must produce identical
    // span-summary counts (wall time differs, counts never do).
    let _guard = exclusive();
    let run = |threads: usize| {
        set_enabled(true);
        reset();
        let per = 12 / threads;
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(move || {
                    for _ in 0..per {
                        let _u = span!("test", "unit");
                        counter("test.units").inc();
                    }
                });
            }
        });
        set_enabled(false);
        let summary = span_summary();
        let stat = summary
            .entries
            .iter()
            .find(|e| e.cat == "test" && e.name == "unit")
            .expect("unit spans recorded");
        (stat.count, counter("test.units").get())
    };
    let (count1, units1) = run(1);
    let (count4, units4) = run(4);
    assert_eq!(count1, 12);
    assert_eq!(count4, 12);
    assert_eq!(units4 - units1, 12, "counter delta identical per run");
    reset();
}
