//! Exporters over a recorder snapshot: Chrome trace-event JSON, a
//! JSON-lines event stream, and a human-readable aggregated tree.

use crate::recorder::{Event, EventKind, FieldValue, ThreadSnapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes a string for embedding in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn args_json(fields: &[(&'static str, FieldValue)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", escape_json(k), v.to_json());
    }
    out.push('}');
    out
}

/// Renders a snapshot as Chrome trace-event JSON (the "JSON Object
/// Format"): load the file in `chrome://tracing` or
/// <https://ui.perfetto.dev>. Every recorder thread becomes its own
/// named track; span begin/end pairs become `B`/`E` duration events and
/// instant events become `i`.
pub fn chrome_trace_json(threads: &[ThreadSnapshot]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut push = |s: String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        out.push_str(&s);
        *first = false;
    };
    for t in threads {
        push(
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                t.tid,
                escape_json(&t.name)
            ),
            &mut first,
        );
        // Replay the thread's nesting so every `E` names the span its
        // matching `B` opened (Perfetto tolerates anonymous ends, but
        // named ones survive re-sorting and partial loads better).
        let mut stack: Vec<(&'static str, &'static str)> = Vec::new();
        for e in &t.events {
            match e.kind {
                EventKind::Begin => {
                    stack.push((e.cat, e.name));
                    push(
                        format!(
                            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"B\",\"ts\":{},\
                             \"pid\":1,\"tid\":{},\"args\":{}}}",
                            escape_json(e.name),
                            escape_json(e.cat),
                            e.ts_us,
                            t.tid,
                            args_json(&e.fields)
                        ),
                        &mut first,
                    );
                }
                EventKind::End => {
                    let (cat, name) = stack.pop().unwrap_or(("", ""));
                    push(
                        format!(
                            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"E\",\"ts\":{},\
                             \"pid\":1,\"tid\":{},\"args\":{}}}",
                            escape_json(name),
                            escape_json(cat),
                            e.ts_us,
                            t.tid,
                            args_json(&e.fields)
                        ),
                        &mut first,
                    );
                }
                EventKind::Instant => {
                    push(
                        format!(
                            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\
                             \"ts\":{},\"pid\":1,\"tid\":{},\"args\":{}}}",
                            escape_json(e.name),
                            escape_json(e.cat),
                            e.ts_us,
                            t.tid,
                            args_json(&e.fields)
                        ),
                        &mut first,
                    );
                }
            }
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Writes [`chrome_trace_json`] of a snapshot to `path`.
///
/// # Errors
///
/// Filesystem failures.
pub fn write_chrome_trace(
    path: impl AsRef<std::path::Path>,
    threads: &[ThreadSnapshot],
) -> std::io::Result<()> {
    std::fs::write(path, chrome_trace_json(threads))
}

/// Renders a snapshot as a JSON-lines event stream: one self-contained
/// JSON object per event, carrying the thread id/name, kind, category,
/// name, timestamp, and fields. Grep-friendly and trivially parseable.
pub fn jsonl(threads: &[ThreadSnapshot]) -> String {
    let mut out = String::new();
    for t in threads {
        for e in &t.events {
            let kind = match e.kind {
                EventKind::Begin => "begin",
                EventKind::End => "end",
                EventKind::Instant => "instant",
            };
            let _ = writeln!(
                out,
                "{{\"tid\":{},\"thread\":\"{}\",\"kind\":\"{}\",\"cat\":\"{}\",\
                 \"name\":\"{}\",\"ts_us\":{},\"fields\":{}}}",
                t.tid,
                escape_json(&t.name),
                kind,
                escape_json(e.cat),
                escape_json(e.name),
                e.ts_us,
                args_json(&e.fields)
            );
        }
    }
    out
}

#[derive(Default)]
struct TreeNode {
    count: u64,
    total_us: u64,
    children: BTreeMap<(String, String), TreeNode>,
}

fn insert_thread(root: &mut TreeNode, events: &[Event]) {
    // Path of (cat, name) keys from the root to the open span.
    let mut path: Vec<(String, String)> = Vec::new();
    let mut begin_ts: Vec<u64> = Vec::new();
    for e in events {
        match e.kind {
            EventKind::Begin => {
                path.push((e.cat.to_string(), e.name.to_string()));
                begin_ts.push(e.ts_us);
            }
            EventKind::End => {
                if let (Some(_), Some(ts)) = (path.last(), begin_ts.pop()) {
                    let mut node = &mut *root;
                    for key in &path {
                        node = node.children.entry(key.clone()).or_default();
                    }
                    node.count += 1;
                    node.total_us += e.ts_us.saturating_sub(ts);
                    path.pop();
                }
            }
            EventKind::Instant => {}
        }
    }
}

fn render(node: &TreeNode, depth: usize, out: &mut String) {
    for ((cat, name), child) in &node.children {
        let _ = writeln!(
            out,
            "{:indent$}{cat}/{name}: {} spans, {} us total ({} us avg)",
            "",
            child.count,
            child.total_us,
            child.total_us.checked_div(child.count).unwrap_or(0),
            indent = depth * 2,
        );
        render(child, depth + 1, out);
    }
}

/// Renders a snapshot as an indented aggregate tree: spans merged across
/// threads by their (category, name) nesting path, each line showing
/// completion count and total/average duration.
pub fn summary_tree(threads: &[ThreadSnapshot]) -> String {
    let mut root = TreeNode::default();
    for t in threads {
        insert_thread(&mut root, &t.events);
    }
    let mut out = String::new();
    render(&root, 0, &mut out);
    out
}
