//! The lock-sharded, thread-aware span recorder.
//!
//! One [`ThreadLog`] per recording thread, registered globally on the
//! thread's first event; each thread appends to its own buffer under its
//! own mutex, so the only cross-thread contention is the registry lock
//! taken once per thread lifetime and the per-thread lock taken briefly
//! by [`snapshot`]. Timestamps are monotonic microseconds since the
//! process-wide epoch (the first use of the recorder), so events from
//! every thread share one timeline.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static NEXT_TID: AtomicU32 = AtomicU32::new(1);

fn registry() -> &'static Mutex<Vec<Arc<ThreadLog>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<ThreadLog>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Locks a mutex, recovering from poisoning (the recorder holds plain
/// event buffers; a panicking thread cannot leave them inconsistent).
fn lock_ignore_poison<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// `true` while span/event recording is on.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on or off. Spans already open keep recording their
/// end events (their guards were armed at begin time).
pub fn set_enabled(on: bool) {
    if on {
        // Pin the epoch before the first event so timestamps are dense.
        let _ = EPOCH.get_or_init(Instant::now);
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Microseconds since the recording epoch.
fn now_us() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// A field value attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Free-form text.
    Str(String),
}

impl FieldValue {
    /// Renders the value as a JSON token (numbers and booleans bare,
    /// strings quoted and escaped).
    pub fn to_json(&self) -> String {
        match self {
            FieldValue::U64(v) => v.to_string(),
            FieldValue::I64(v) => v.to_string(),
            FieldValue::F64(v) if v.is_finite() => v.to_string(),
            FieldValue::F64(_) => "null".to_string(),
            FieldValue::Bool(v) => v.to_string(),
            FieldValue::Str(s) => format!("\"{}\"", crate::export::escape_json(s)),
        }
    }
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(s) => write!(f, "{s}"),
        }
    }
}

macro_rules! impl_from {
    ($($ty:ty => $variant:ident as $cast:ty),* $(,)?) => {
        $(impl From<$ty> for FieldValue {
            fn from(v: $ty) -> Self {
                FieldValue::$variant(v as $cast)
            }
        })*
    };
}
impl_from!(u64 => U64 as u64, u32 => U64 as u64, usize => U64 as u64,
           i64 => I64 as i64, i32 => I64 as i64, f64 => F64 as f64);

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// What an [`Event`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened.
    Begin,
    /// The most recently opened span on this thread closed.
    End,
    /// A zero-duration point event.
    Instant,
}

/// One recorded event on one thread's timeline.
#[derive(Debug, Clone)]
pub struct Event {
    /// Begin / end / instant.
    pub kind: EventKind,
    /// Category (Chrome trace `cat`): the pipeline layer, e.g. `"flow"`.
    pub cat: &'static str,
    /// Event name (empty on `End`; the matching `Begin` names the span).
    pub name: &'static str,
    /// Microseconds since the recording epoch.
    pub ts_us: u64,
    /// Attached key/value fields.
    pub fields: Vec<(&'static str, FieldValue)>,
}

/// One thread's private event shard.
struct ThreadLog {
    tid: u32,
    name: String,
    events: Mutex<Vec<Event>>,
}

thread_local! {
    static LOCAL: RefCell<Option<Arc<ThreadLog>>> = const { RefCell::new(None) };
}

/// Appends an event to the current thread's shard, registering the shard
/// on first use.
fn push_event(event: Event) {
    LOCAL.with(|slot| {
        let mut slot = slot.borrow_mut();
        let log = slot.get_or_insert_with(|| {
            let current = std::thread::current();
            let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            let name = current
                .name()
                .map(str::to_string)
                .unwrap_or_else(|| format!("thread-{tid}"));
            let log = Arc::new(ThreadLog {
                tid,
                name,
                events: Mutex::new(Vec::new()),
            });
            lock_ignore_poison(registry()).push(log.clone());
            log
        });
        lock_ignore_poison(&log.events).push(event);
    });
}

/// An open span; records the matching end event when dropped.
///
/// Produced by the [`crate::span!`] macro (or [`begin_span`] directly).
/// A guard from a disabled recorder is inert: dropping it records
/// nothing.
#[must_use = "a span ends when its guard drops; binding to _ ends it immediately"]
pub struct SpanGuard {
    armed: bool,
    end_fields: Vec<(&'static str, FieldValue)>,
}

impl SpanGuard {
    /// The inert guard handed out while recording is disabled.
    #[inline]
    pub fn disabled() -> SpanGuard {
        SpanGuard {
            armed: false,
            end_fields: Vec::new(),
        }
    }

    /// Attaches a field to the span's end event (for values only known
    /// when the work finishes, e.g. byte counts or iteration totals).
    /// No-op on an inert guard.
    pub fn record(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if self.armed {
            self.end_fields.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.armed {
            push_event(Event {
                kind: EventKind::End,
                cat: "",
                name: "",
                ts_us: now_us(),
                fields: std::mem::take(&mut self.end_fields),
            });
        }
    }
}

/// Opens a span unconditionally (the [`crate::span!`] macro checks
/// [`enabled`] first — prefer it).
pub fn begin_span(
    cat: &'static str,
    name: &'static str,
    fields: Vec<(&'static str, FieldValue)>,
) -> SpanGuard {
    push_event(Event {
        kind: EventKind::Begin,
        cat,
        name,
        ts_us: now_us(),
        fields,
    });
    SpanGuard {
        armed: true,
        end_fields: Vec::new(),
    }
}

/// Records an instant event unconditionally (the [`crate::event!`] macro
/// checks [`enabled`] first — prefer it).
pub fn instant_event(
    cat: &'static str,
    name: &'static str,
    fields: Vec<(&'static str, FieldValue)>,
) {
    push_event(Event {
        kind: EventKind::Instant,
        cat,
        name,
        ts_us: now_us(),
        fields,
    });
}

/// Severity of a structured [`log_event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Fine-grained progress detail.
    Debug,
    /// Milestones.
    Info,
    /// Unexpected-but-recoverable situations.
    Warn,
}

impl Level {
    /// Lower-case name (`"debug"` / `"info"` / `"warn"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
        }
    }
}

/// Records a leveled structured log message as an instant event in the
/// `"log"` category (the replacement for ad-hoc string callbacks). No-op
/// while recording is disabled.
pub fn log_event(level: Level, target: &'static str, message: impl Into<String>) {
    if enabled() {
        instant_event(
            "log",
            target,
            vec![
                ("level", FieldValue::Str(level.as_str().to_string())),
                ("message", FieldValue::Str(message.into())),
            ],
        );
    }
}

/// One thread's recorded timeline, as captured by [`snapshot`].
#[derive(Debug, Clone)]
pub struct ThreadSnapshot {
    /// Recorder-assigned dense thread id (stable for the thread's life).
    pub tid: u32,
    /// The thread's name (falls back to `thread-<tid>`).
    pub name: String,
    /// Events in the order the thread recorded them.
    pub events: Vec<Event>,
}

/// Copies every thread's recorded events out of the recorder, ordered by
/// thread id. Recording continues unaffected.
pub fn snapshot() -> Vec<ThreadSnapshot> {
    let logs: Vec<Arc<ThreadLog>> = lock_ignore_poison(registry()).clone();
    let mut out: Vec<ThreadSnapshot> = logs
        .iter()
        .map(|log| ThreadSnapshot {
            tid: log.tid,
            name: log.name.clone(),
            events: lock_ignore_poison(&log.events).clone(),
        })
        .collect();
    out.sort_by_key(|t| t.tid);
    out
}

/// Drops every recorded event (thread registrations and ids survive).
pub fn reset() {
    for log in lock_ignore_poison(registry()).iter() {
        lock_ignore_poison(&log.events).clear();
    }
}

/// Aggregate statistics of one span name within one category.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStat {
    /// Span category.
    pub cat: String,
    /// Span name.
    pub name: String,
    /// Completed begin/end pairs.
    pub count: u64,
    /// Total duration across all completions, microseconds.
    pub total_us: u64,
    /// Longest single completion, microseconds.
    pub max_us: u64,
}

/// A compact aggregate of every completed span, suitable for shipping
/// over the wire (the server attaches one to its handshake so clients
/// see where server time went without a full trace).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanSummary {
    /// Per-(category, name) aggregates, sorted by category then name.
    pub entries: Vec<SpanStat>,
}

impl SpanSummary {
    /// Total completed spans across all entries.
    pub fn span_count(&self) -> u64 {
        self.entries.iter().map(|e| e.count).sum()
    }
}

impl fmt::Display for SpanSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.entries {
            writeln!(
                f,
                "{}/{}: {} spans, {} us total, {} us max",
                e.cat, e.name, e.count, e.total_us, e.max_us
            )?;
        }
        Ok(())
    }
}

/// Aggregates the current recording into per-(category, name) span
/// statistics by replaying each thread's begin/end nesting. Unclosed
/// spans are ignored.
pub fn span_summary() -> SpanSummary {
    summarize(&snapshot())
}

/// Aggregates an already-captured snapshot (see [`span_summary`]).
pub fn summarize(threads: &[ThreadSnapshot]) -> SpanSummary {
    let mut agg: BTreeMap<(&str, &str), (u64, u64, u64)> = BTreeMap::new();
    for thread in threads {
        let mut stack: Vec<(&str, &str, u64)> = Vec::new();
        for e in &thread.events {
            match e.kind {
                EventKind::Begin => stack.push((e.cat, e.name, e.ts_us)),
                EventKind::End => {
                    if let Some((cat, name, begin)) = stack.pop() {
                        let dur = e.ts_us.saturating_sub(begin);
                        let slot = agg.entry((cat, name)).or_insert((0, 0, 0));
                        slot.0 += 1;
                        slot.1 += dur;
                        slot.2 = slot.2.max(dur);
                    }
                }
                EventKind::Instant => {}
            }
        }
    }
    SpanSummary {
        entries: agg
            .into_iter()
            .map(|((cat, name), (count, total_us, max_us))| SpanStat {
                cat: cat.to_string(),
                name: name.to_string(),
                count,
                total_us,
                max_us,
            })
            .collect(),
    }
}
