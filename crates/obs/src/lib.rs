//! # offload-obs — end-to-end tracing and metrics for the offload pipeline
//!
//! A lightweight, zero-dependency observability facade for the whole
//! workspace, hand-rolled like everything else here (no `tokio`, no
//! `tracing`): the analysis pipeline (TCFG → cost annotation → parametric
//! min-cut → polyhedral projection) and the networked runtime both record
//! into it, and three exporters turn the recording into something a human
//! can read.
//!
//! Three pieces:
//!
//! * **Spans** ([`span!`]) — hierarchical, thread-aware begin/end event
//!   pairs recorded into a lock-sharded in-memory [`recorder`]: each
//!   thread appends to its own buffer under its own lock, so workers
//!   never contend with each other. Timestamps are monotonic microseconds
//!   since the process-wide recording epoch. When recording is disabled
//!   (the default) a span costs one relaxed atomic load — the hot solver
//!   loops stay within their < 3 % overhead budget.
//! * **Metrics** ([`counter`], [`gauge`], [`histogram`]) — a process-wide
//!   registry of named counters, gauges, and log-scale latency histograms
//!   with p50/p90/p99 summaries. The registry subsumes the pipeline's
//!   flat [`PipelineStats`] record, which lives here and is re-exported
//!   by `offload-core` so every existing field keeps working.
//! * **Exporters** ([`export`]) — Chrome trace-event JSON (open it in
//!   `chrome://tracing` or <https://ui.perfetto.dev>, one track per
//!   worker thread), a JSON-lines event stream, and a human-readable
//!   aggregated tree summary.
//!
//! ```
//! offload_obs::set_enabled(true);
//! {
//!     let mut span = offload_obs::span!("demo", "outer", items = 3u64);
//!     let _inner = offload_obs::span!("demo", "inner");
//!     span.record("done", true);
//! }
//! let trace = offload_obs::export::chrome_trace_json(&offload_obs::snapshot());
//! assert!(trace.contains("\"traceEvents\""));
//! offload_obs::set_enabled(false);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod export;
mod metrics;
mod pipeline;
mod recorder;

pub use metrics::{
    counter, gauge, histogram, metrics_snapshot, reset_metrics, Counter, Gauge, Histogram,
    HistogramSummary, MetricValue,
};
pub use pipeline::PipelineStats;
pub use recorder::{
    begin_span, enabled, instant_event, log_event, reset, set_enabled, snapshot, span_summary,
    Event, EventKind, FieldValue, Level, SpanGuard, SpanStat, SpanSummary, ThreadSnapshot,
};

/// Opens a span: `span!("category", "name", key = value, ...)`.
///
/// Returns a [`SpanGuard`] that records the matching end event when
/// dropped; extra fields can be attached to the end event with
/// [`SpanGuard::record`]. Category and name must be string literals (they
/// become the Chrome trace `cat`/`name`); field values are anything
/// convertible into a [`FieldValue`]. When recording is disabled the
/// macro evaluates none of the field expressions and costs one relaxed
/// atomic load.
#[macro_export]
macro_rules! span {
    ($cat:expr, $name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::begin_span(
                $cat,
                $name,
                vec![$((stringify!($key), $crate::FieldValue::from($value))),*],
            )
        } else {
            $crate::SpanGuard::disabled()
        }
    };
}

/// Records a zero-duration instant event:
/// `event!("category", "name", key = value, ...)`.
///
/// Like [`span!`], field expressions are only evaluated while recording
/// is enabled.
#[macro_export]
macro_rules! event {
    ($cat:expr, $name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::instant_event(
                $cat,
                $name,
                vec![$((stringify!($key), $crate::FieldValue::from($value))),*],
            );
        }
    };
}
