//! The process-wide metrics registry: named counters, gauges, and
//! log-scale latency histograms.
//!
//! Handles are `Arc`s to atomics — cheap to clone, cheap to update from
//! any thread, and safe to cache in hot loops. The registry itself is a
//! `BTreeMap` behind one mutex, touched only on first registration and
//! on snapshot, so steady-state updates never contend on it.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins signed gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Power-of-two bucket count: bucket `i` holds values whose bit length
/// is `i`, i.e. `[2^(i-1), 2^i)` (bucket 0 holds exactly zero).
const BUCKETS: usize = 65;

/// A log-scale histogram for non-negative samples (latencies in
/// microseconds, byte counts, ...). Fixed power-of-two buckets: exact
/// counts, ~2× worst-case relative error on percentile estimates,
/// constant memory, wait-free recording.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0u64; BUCKETS].map(AtomicU64::new),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Summary statistics of a [`Histogram`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample (exact).
    pub max: u64,
    /// Estimated 50th percentile.
    pub p50: u64,
    /// Estimated 90th percentile.
    pub p90: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
}

impl Histogram {
    fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Estimates the `q`-quantile (`0 < q <= 1`) by linear interpolation
    /// within the bucket that crosses the target rank. Returns 0 when
    /// empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return 0;
        }
        let target = (q * count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed);
            if n == 0 {
                continue;
            }
            if seen + n >= target {
                // Bucket i spans [lo, hi]; interpolate by rank within it.
                let lo = if i == 0 { 0 } else { 1u64 << (i - 1) };
                let hi = if i == 0 { 0 } else { (1u64 << i) - 1 };
                let into = (target - seen) as f64 / n as f64;
                let est = lo as f64 + (hi - lo) as f64 * into;
                return (est.round() as u64).min(self.max.load(Ordering::Relaxed));
            }
            seen += n;
        }
        self.max.load(Ordering::Relaxed)
    }

    /// Count / sum / max plus p50/p90/p99 estimates.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

fn registry() -> &'static Mutex<BTreeMap<&'static str, Metric>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<&'static str, Metric>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn lock() -> std::sync::MutexGuard<'static, BTreeMap<&'static str, Metric>> {
    registry().lock().unwrap_or_else(|e| e.into_inner())
}

/// The counter registered under `name` (created on first use).
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric kind.
pub fn counter(name: &'static str) -> Arc<Counter> {
    match lock()
        .entry(name)
        .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
    {
        Metric::Counter(c) => c.clone(),
        _ => panic!("metric {name} is not a counter"),
    }
}

/// The gauge registered under `name` (created on first use).
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric kind.
pub fn gauge(name: &'static str) -> Arc<Gauge> {
    match lock()
        .entry(name)
        .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
    {
        Metric::Gauge(g) => g.clone(),
        _ => panic!("metric {name} is not a gauge"),
    }
}

/// The histogram registered under `name` (created on first use).
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric kind.
pub fn histogram(name: &'static str) -> Arc<Histogram> {
    match lock()
        .entry(name)
        .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::default())))
    {
        Metric::Histogram(h) => h.clone(),
        _ => panic!("metric {name} is not a histogram"),
    }
}

/// A metric's current value, as captured by [`metrics_snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram summary.
    Histogram(HistogramSummary),
}

/// Every registered metric and its current value, sorted by name.
pub fn metrics_snapshot() -> Vec<(&'static str, MetricValue)> {
    lock()
        .iter()
        .map(|(name, m)| {
            let v = match m {
                Metric::Counter(c) => MetricValue::Counter(c.get()),
                Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                Metric::Histogram(h) => MetricValue::Histogram(h.summary()),
            };
            (*name, v)
        })
        .collect()
}

/// Unregisters every metric (existing handles keep working but are no
/// longer visible to [`metrics_snapshot`]). Intended for tests.
pub fn reset_metrics() {
    lock().clear();
}
