//! Error type shared by the lexer, parser and type checker.

use crate::token::Span;
use std::fmt;

/// Phase in which a [`LangError`] was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Tokenization.
    Lex,
    /// Parsing.
    Parse,
    /// Type checking.
    Type,
}

/// An error produced by the front end, with its source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LangError {
    phase: Phase,
    span: Span,
    message: String,
}

impl LangError {
    /// Creates a lexer error.
    pub fn lex(span: Span, message: impl Into<String>) -> Self {
        LangError {
            phase: Phase::Lex,
            span,
            message: message.into(),
        }
    }

    /// Creates a parser error.
    pub fn parse(span: Span, message: impl Into<String>) -> Self {
        LangError {
            phase: Phase::Parse,
            span,
            message: message.into(),
        }
    }

    /// Creates a type-checker error.
    pub fn ty(span: Span, message: impl Into<String>) -> Self {
        LangError {
            phase: Phase::Type,
            span,
            message: message.into(),
        }
    }

    /// The phase that rejected the input.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Source location of the error.
    pub fn span(&self) -> Span {
        self.span
    }

    /// Human-readable description (without location).
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let phase = match self.phase {
            Phase::Lex => "lex",
            Phase::Parse => "parse",
            Phase::Type => "type",
        };
        write!(f, "{phase} error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for LangError {}
