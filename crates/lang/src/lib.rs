//! # offload-lang
//!
//! Front end for the mini-C language analyzed by the
//! computation-offloading compiler (the reproduction of *Wang & Li,
//! PLDI 2004* works on this language instead of GCC's C front end).
//!
//! The language covers everything the paper's analyses exercise:
//! integers, fixed-size arrays, pointers, structs, dynamic allocation
//! (`alloc(T, n)`), opaque function pointers (`fn`), and the two I/O
//! builtins `input()` / `output(v)` that pin tasks to the client under the
//! paper's *semantic constraint*. The parameters of `main` are the
//! program's run-time parameters `h` used by the parametric analysis.
//!
//! # Pipeline
//!
//! ```
//! use offload_lang::{parse, check};
//!
//! let program = parse(
//!     "void main(int n) {
//!          int i;
//!          for (i = 0; i < n; i++) { output(i); }
//!      }",
//! )?;
//! let checked = check(program)?;
//! assert_eq!(checked.program.main().unwrap().params[0].name, "n");
//! # Ok::<(), offload_lang::LangError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
mod error;
pub mod examples_src;
mod lexer;
mod parser;
mod pretty;
mod token;
mod types;

pub use ast::{
    BinOp, Block, Expr, ExprKind, Function, Global, NodeId, Param, Program, Stmt, StructDef, Type,
    UnOp,
};
pub use error::{LangError, Phase};
pub use lexer::lex;
pub use parser::parse;
pub use pretty::{expr as pretty_expr, pretty};
pub use token::{Span, Token, TokenKind};
pub use types::{check, CallTarget, CheckedProgram};

/// Parses and type-checks in one step.
///
/// # Errors
///
/// Returns the first lexical, syntactic or type error.
///
/// # Examples
///
/// ```
/// let checked = offload_lang::frontend("void main() { output(42); }")?;
/// assert_eq!(checked.program.functions.len(), 1);
/// # Ok::<(), offload_lang::LangError>(())
/// ```
pub fn frontend(src: &str) -> Result<CheckedProgram, LangError> {
    check(parse(src)?)
}
