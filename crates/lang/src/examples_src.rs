//! Embedded mini-C sources used across the workspace's tests and examples.

/// The running example of the paper (Figure 1): an audio encoding pipeline.
///
/// `main(x, y, z)` — `x` frames, buffer size `y`, per-unit encoding work
/// `z`. Function `f` reads a frame into `inbuf` (task *f1*), calls the
/// encoder `g` through a function pointer, then writes `outbuf` to the
/// output device (task *f2*).
pub const FIGURE1: &str = r#"
int inbuf[4096];
int outbuf[4096];

// The encoder: z units of work per data unit (the paper's function g).
void g_fast(int y, int z) {
    int i;
    int j;
    int acc;
    for (i = 0; i < y; i++) {
        acc = inbuf[i];
        for (j = 0; j < z; j++) {
            acc = acc + 1;
        }
        outbuf[i] = acc;
    }
}

void f(int x, int y, int z) {
    int i;
    int j;
    int p;
    int q;
    fn g;
    g = &g_fast;
    for (j = 0; j < x; j++) {
        for (i = 0; i < y; i++) {
            p = input();
            inbuf[i] = p;
        }
        g(y, z);
        for (i = 0; i < y; i++) {
            q = outbuf[i];
            output(q);
        }
    }
}

void main(int x, int y, int z) {
    f(x, y, z);
}
"#;

/// The memory-abstraction example of the paper (Figure 4): a function that
/// allocates a linked list of `n` elements and returns its head.
pub const FIGURE4: &str = r#"
struct list {
    int index;
    struct list *next;
};

struct list *build(int n) {
    int i;
    struct list *p;
    struct list *q;
    q = 0;
    for (i = 0; i < n; i++) {
        p = alloc(struct list, 1);
        p->index = i;
        p->next = q;
        q = p;
    }
    return q;
}

void main(int n) {
    struct list *head;
    struct list *cur;
    int sum;
    head = build(n);
    sum = 0;
    cur = head;
    while (cur != 0) {
        sum = sum + cur->index;
        cur = cur->next;
    }
    output(sum);
}
"#;

/// A minimal compute-heavy kernel with one parameter, used by unit tests.
pub const SUM_SQUARES: &str = r#"
void main(int n) {
    int i;
    int acc;
    acc = 0;
    for (i = 0; i < n; i++) {
        acc = acc + i * i;
    }
    output(acc);
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::types::check;

    #[test]
    fn all_embedded_sources_check() {
        for (name, src) in [
            ("FIGURE1", FIGURE1),
            ("FIGURE4", FIGURE4),
            ("SUM_SQUARES", SUM_SQUARES),
        ] {
            let p = parse(src).unwrap_or_else(|e| panic!("{name}: {e}"));
            check(p).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
}
