//! Lexer for the mini-C source language.

use crate::error::LangError;
use crate::token::{Span, Token, TokenKind};

/// Tokenizes `src`, returning the token stream (terminated by
/// [`TokenKind::Eof`]).
///
/// # Errors
///
/// Returns a [`LangError`] on unknown characters, malformed integer
/// literals, or unterminated block comments.
///
/// # Examples
///
/// ```
/// use offload_lang::lex;
///
/// let tokens = lex("int x = 42;").unwrap();
/// assert_eq!(tokens.len(), 6); // int, x, =, 42, ;, EOF
/// ```
pub fn lex(src: &str) -> Result<Vec<Token>, LangError> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn span(&self) -> Span {
        Span::new(self.line, self.col)
    }

    fn run(mut self) -> Result<Vec<Token>, LangError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let span = self.span();
            let Some(c) = self.peek() else {
                out.push(Token {
                    kind: TokenKind::Eof,
                    span,
                });
                return Ok(out);
            };
            let kind = match c {
                b'0'..=b'9' => self.lex_int(span)?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.lex_word(),
                _ => self.lex_punct(span)?,
            };
            out.push(Token { kind, span });
        }
    }

    fn skip_trivia(&mut self) -> Result<(), LangError> {
        loop {
            match self.peek() {
                Some(b' ') | Some(b'\t') | Some(b'\r') | Some(b'\n') => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.span();
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => {
                                return Err(LangError::lex(start, "unterminated block comment"));
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_int(&mut self, span: Span) -> Result<TokenKind, LangError> {
        let mut value: i64 = 0;
        while let Some(c @ b'0'..=b'9') = self.peek() {
            value = value
                .checked_mul(10)
                .and_then(|v| v.checked_add((c - b'0') as i64))
                .ok_or_else(|| LangError::lex(span, "integer literal overflows i64"))?;
            self.bump();
        }
        if matches!(self.peek(), Some(b'a'..=b'z' | b'A'..=b'Z' | b'_')) {
            return Err(LangError::lex(span, "identifier cannot start with a digit"));
        }
        Ok(TokenKind::Int(value))
    }

    fn lex_word(&mut self) -> TokenKind {
        let start = self.pos;
        while let Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_') = self.peek() {
            self.bump();
        }
        let word = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii word");
        match word {
            "int" => TokenKind::KwInt,
            "void" => TokenKind::KwVoid,
            "struct" => TokenKind::KwStruct,
            "fn" => TokenKind::KwFn,
            "if" => TokenKind::KwIf,
            "else" => TokenKind::KwElse,
            "while" => TokenKind::KwWhile,
            "for" => TokenKind::KwFor,
            "return" => TokenKind::KwReturn,
            "break" => TokenKind::KwBreak,
            "continue" => TokenKind::KwContinue,
            "alloc" => TokenKind::KwAlloc,
            _ => TokenKind::Ident(word.to_string()),
        }
    }

    fn lex_punct(&mut self, span: Span) -> Result<TokenKind, LangError> {
        use TokenKind::*;
        let c = self.bump().expect("caller checked non-empty");
        let two = |lexer: &mut Self, next: u8, yes: TokenKind, no: TokenKind| {
            if lexer.peek() == Some(next) {
                lexer.bump();
                yes
            } else {
                no
            }
        };
        Ok(match c {
            b'(' => LParen,
            b')' => RParen,
            b'{' => LBrace,
            b'}' => RBrace,
            b'[' => LBracket,
            b']' => RBracket,
            b';' => Semi,
            b',' => Comma,
            b'.' => Dot,
            b'=' => two(self, b'=', Eq, Assign),
            b'!' => two(self, b'=', Ne, Bang),
            b'<' => two(self, b'=', Le, Lt),
            b'>' => two(self, b'=', Ge, Gt),
            b'+' => {
                if self.peek() == Some(b'+') {
                    self.bump();
                    PlusPlus
                } else if self.peek() == Some(b'=') {
                    self.bump();
                    PlusAssign
                } else {
                    Plus
                }
            }
            b'-' => {
                if self.peek() == Some(b'-') {
                    self.bump();
                    MinusMinus
                } else if self.peek() == Some(b'=') {
                    self.bump();
                    MinusAssign
                } else if self.peek() == Some(b'>') {
                    self.bump();
                    Arrow
                } else {
                    Minus
                }
            }
            b'*' => Star,
            b'/' => Slash,
            b'%' => Percent,
            b'&' => two(self, b'&', AndAnd, Amp),
            b'|' => {
                if self.peek() == Some(b'|') {
                    self.bump();
                    OrOr
                } else {
                    return Err(LangError::lex(
                        span,
                        "expected `||` (bitwise `|` unsupported)",
                    ));
                }
            }
            other => {
                return Err(LangError::lex(
                    span,
                    format!("unexpected character `{}`", other as char),
                ));
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenKind::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            kinds("int foo struct fn forx"),
            vec![
                KwInt,
                Ident("foo".into()),
                KwStruct,
                KwFn,
                Ident("forx".into()),
                Eof
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("== = != ! <= < >= > && & || ++ -- += -= ->"),
            vec![
                Eq,
                Assign,
                Ne,
                Bang,
                Le,
                Lt,
                Ge,
                Gt,
                AndAnd,
                Amp,
                OrOr,
                PlusPlus,
                MinusMinus,
                PlusAssign,
                MinusAssign,
                Arrow,
                Eof
            ]
        );
    }

    #[test]
    fn integers() {
        assert_eq!(
            kinds("0 42 123456789"),
            vec![Int(0), Int(42), Int(123456789), Eof]
        );
    }

    #[test]
    fn integer_overflow_rejected() {
        assert!(lex("999999999999999999999999").is_err());
    }

    #[test]
    fn digit_prefixed_ident_rejected() {
        assert!(lex("1abc").is_err());
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("a // line\n b /* block\nspanning */ c"),
            vec![Ident("a".into()), Ident("b".into()), Ident("c".into()), Eof]
        );
    }

    #[test]
    fn unterminated_comment() {
        let err = lex("/* nope").unwrap_err();
        assert!(err.to_string().contains("unterminated"));
    }

    #[test]
    fn spans_track_lines() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[0].span.line, 1);
        assert_eq!(toks[1].span.line, 2);
        assert_eq!(toks[1].span.col, 3);
    }

    #[test]
    fn unknown_character() {
        assert!(lex("a $ b").is_err());
        assert!(lex("a | b").is_err());
    }
}
