//! Type checker for the mini-C source language.
//!
//! Produces a [`CheckedProgram`]: the AST plus side tables giving the type
//! of every expression node and the resolution of every call site. Later
//! phases (IR lowering, points-to analysis) consume these tables and never
//! re-infer types.

use crate::ast::*;
use crate::error::LangError;
use crate::token::Span;
use std::collections::HashMap;

/// How a call site resolves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallTarget {
    /// A call to a user-defined function by name.
    Direct(String),
    /// The `input()` builtin (client I/O, reads one integer).
    Input,
    /// The `output(v)` builtin (client I/O, writes one integer).
    Output,
    /// An indirect call through a `fn`-typed value; concrete targets are
    /// discovered by points-to analysis.
    Indirect,
}

/// A type-checked program with expression types and call resolutions.
#[derive(Debug, Clone)]
pub struct CheckedProgram {
    /// The underlying AST.
    pub program: Program,
    /// Inferred type of every expression node.
    pub types: HashMap<NodeId, Type>,
    /// Resolution of every `Call`/`CallPtr` node.
    pub call_targets: HashMap<NodeId, CallTarget>,
}

impl CheckedProgram {
    /// The type of an expression node.
    ///
    /// # Panics
    ///
    /// Panics if the node id does not belong to this program.
    pub fn type_of(&self, id: NodeId) -> &Type {
        self.types.get(&id).expect("expression was type-checked")
    }
}

/// Type-checks a parsed program.
///
/// # Errors
///
/// Returns the first type error found (undefined names, type mismatches,
/// invalid l-values, bad `main` signature, ...).
///
/// # Examples
///
/// ```
/// use offload_lang::{parse, check};
///
/// let program = parse("void main(int n) { output(n * 2); }")?;
/// let checked = check(program)?;
/// assert_eq!(checked.program.main().unwrap().params.len(), 1);
/// # Ok::<(), offload_lang::LangError>(())
/// ```
pub fn check(program: Program) -> Result<CheckedProgram, LangError> {
    let mut checker = Checker {
        program: &program,
        types: HashMap::new(),
        call_targets: HashMap::new(),
        scopes: Vec::new(),
        current_ret: Type::Void,
        loop_depth: 0,
    };
    checker.check_structs()?;
    checker.check_globals()?;
    checker.check_main_signature()?;
    for f in &program.functions {
        checker.check_function(f)?;
    }
    let Checker {
        types,
        call_targets,
        ..
    } = checker;
    Ok(CheckedProgram {
        program,
        types,
        call_targets,
    })
}

struct Checker<'a> {
    program: &'a Program,
    types: HashMap<NodeId, Type>,
    call_targets: HashMap<NodeId, CallTarget>,
    /// Innermost scope last. Globals live in `scopes[0]` during function
    /// checking.
    scopes: Vec<HashMap<String, Type>>,
    current_ret: Type,
    loop_depth: u32,
}

impl<'a> Checker<'a> {
    fn check_structs(&self) -> Result<(), LangError> {
        let mut seen = HashMap::new();
        for s in &self.program.structs {
            if seen.insert(s.name.clone(), ()).is_some() {
                return Err(LangError::ty(
                    s.span,
                    format!("duplicate struct `{}`", s.name),
                ));
            }
            let mut fields = HashMap::new();
            for (fname, fty) in &s.fields {
                if fields.insert(fname.clone(), ()).is_some() {
                    return Err(LangError::ty(
                        s.span,
                        format!("duplicate field `{fname}` in struct `{}`", s.name),
                    ));
                }
                self.validate_type(fty, s.span)?;
                // By-value self reference would make the struct infinite.
                if self.embeds_struct(fty, &s.name) {
                    return Err(LangError::ty(
                        s.span,
                        format!("struct `{}` embeds itself by value via `{fname}`", s.name),
                    ));
                }
            }
        }
        Ok(())
    }

    /// Returns `true` if `ty` contains `name` by value (not behind a
    /// pointer). Only needs to detect direct self-embedding plus embedding
    /// through earlier structs (definitions are checked in order and our
    /// language has no forward declarations).
    fn embeds_struct(&self, ty: &Type, name: &str) -> bool {
        match ty {
            Type::Struct(s) if s == name => true,
            Type::Struct(s) => self
                .program
                .struct_def(s)
                .map(|d| d.fields.iter().any(|(_, t)| self.embeds_struct(t, name)))
                .unwrap_or(false),
            Type::Array(t, _) => self.embeds_struct(t, name),
            _ => false,
        }
    }

    fn validate_type(&self, ty: &Type, span: Span) -> Result<(), LangError> {
        match ty {
            Type::Int | Type::Fn => Ok(()),
            Type::Void => Err(LangError::ty(span, "`void` is only valid as a return type")),
            Type::Ptr(t) => {
                // Pointers may reference structs defined later (or not yet
                // checked); only verify the name exists somewhere.
                if let Type::Struct(name) = innermost(t) {
                    if self.program.struct_def(name).is_none() {
                        return Err(LangError::ty(span, format!("unknown struct `{name}`")));
                    }
                }
                Ok(())
            }
            Type::Array(t, _) => self.validate_type(t, span),
            Type::Struct(name) => {
                if self.program.struct_def(name).is_none() {
                    return Err(LangError::ty(span, format!("unknown struct `{name}`")));
                }
                Ok(())
            }
        }
    }

    fn check_globals(&mut self) -> Result<(), LangError> {
        let mut globals = HashMap::new();
        for g in &self.program.globals {
            self.validate_type(&g.ty, g.span)?;
            if globals.insert(g.name.clone(), g.ty.clone()).is_some() {
                return Err(LangError::ty(
                    g.span,
                    format!("duplicate global `{}`", g.name),
                ));
            }
            if self.program.function(&g.name).is_some() {
                return Err(LangError::ty(
                    g.span,
                    format!("global `{}` collides with a function name", g.name),
                ));
            }
        }
        self.scopes.push(globals);
        Ok(())
    }

    fn check_main_signature(&self) -> Result<(), LangError> {
        let Some(main) = self.program.main() else {
            return Err(LangError::ty(
                Span::default(),
                "program has no `main` function",
            ));
        };
        for p in &main.params {
            if p.ty != Type::Int {
                return Err(LangError::ty(
                    p.span,
                    "parameters of `main` are the run-time parameters and must be `int`",
                ));
            }
        }
        Ok(())
    }

    fn check_function(&mut self, f: &Function) -> Result<(), LangError> {
        if is_builtin(&f.name) {
            return Err(LangError::ty(
                f.span,
                format!("`{}` is a reserved builtin", f.name),
            ));
        }
        if self
            .program
            .functions
            .iter()
            .filter(|g| g.name == f.name)
            .count()
            > 1
        {
            return Err(LangError::ty(
                f.span,
                format!("duplicate function `{}`", f.name),
            ));
        }
        self.current_ret = f.ret.clone();
        let mut params = HashMap::new();
        for p in &f.params {
            self.validate_type(&p.ty, p.span)?;
            if !p.ty.is_scalar() {
                return Err(LangError::ty(
                    p.span,
                    "parameters must be scalars (int, pointer or fn)",
                ));
            }
            if params.insert(p.name.clone(), p.ty.clone()).is_some() {
                return Err(LangError::ty(
                    p.span,
                    format!("duplicate parameter `{}`", p.name),
                ));
            }
        }
        self.scopes.push(params);
        self.check_block(&f.body)?;
        self.scopes.pop();
        Ok(())
    }

    fn check_block(&mut self, b: &Block) -> Result<(), LangError> {
        self.scopes.push(HashMap::new());
        for s in &b.stmts {
            self.check_stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn declare(&mut self, name: &str, ty: Type, span: Span) -> Result<(), LangError> {
        let scope = self.scopes.last_mut().expect("inside a scope");
        if scope.insert(name.to_string(), ty).is_some() {
            return Err(LangError::ty(
                span,
                format!("`{name}` already declared in this scope"),
            ));
        }
        Ok(())
    }

    fn lookup(&self, name: &str) -> Option<&Type> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn check_stmt(&mut self, s: &Stmt) -> Result<(), LangError> {
        match s {
            Stmt::Decl {
                name,
                ty,
                init,
                span,
            } => {
                self.validate_type(ty, *span)?;
                if let Some(e) = init {
                    let ity = self.check_expr(e)?;
                    self.require_assignable(ty, &ity, e, *span)?;
                }
                self.declare(name, ty.clone(), *span)
            }
            Stmt::Expr(e) => {
                self.check_expr(e)?;
                Ok(())
            }
            Stmt::If {
                cond,
                then,
                otherwise,
                ..
            } => {
                self.require_condition(cond)?;
                self.check_block(then)?;
                if let Some(b) = otherwise {
                    self.check_block(b)?;
                }
                Ok(())
            }
            Stmt::While { cond, body, .. } => {
                self.require_condition(cond)?;
                self.loop_depth += 1;
                self.check_block(body)?;
                self.loop_depth -= 1;
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                self.scopes.push(HashMap::new());
                if let Some(i) = init {
                    self.check_stmt(i)?;
                }
                if let Some(c) = cond {
                    self.require_condition(c)?;
                }
                if let Some(st) = step {
                    self.check_expr(st)?;
                }
                self.loop_depth += 1;
                self.check_block(body)?;
                self.loop_depth -= 1;
                self.scopes.pop();
                Ok(())
            }
            Stmt::Return { value, span } => {
                let ret = self.current_ret.clone();
                match (ret, value) {
                    (Type::Void, None) => Ok(()),
                    (Type::Void, Some(_)) => {
                        Err(LangError::ty(*span, "void function cannot return a value"))
                    }
                    (ret, Some(e)) => {
                        let t = self.check_expr(e)?;
                        self.require_assignable(&ret, &t, e, *span)
                    }
                    (_, None) => Err(LangError::ty(*span, "missing return value")),
                }
            }
            Stmt::Break(span) | Stmt::Continue(span) => {
                if self.loop_depth == 0 {
                    Err(LangError::ty(*span, "break/continue outside of a loop"))
                } else {
                    Ok(())
                }
            }
            Stmt::Block(b) => self.check_block(b),
        }
    }

    fn require_condition(&mut self, e: &Expr) -> Result<(), LangError> {
        let t = self.check_expr(e)?;
        if t.is_scalar() {
            Ok(())
        } else {
            Err(LangError::ty(
                e.span,
                format!("condition must be scalar, found `{t}`"),
            ))
        }
    }

    /// `expected = actual` is allowed if types match exactly, or the value
    /// is the literal 0 assigned to a pointer (null).
    fn require_assignable(
        &self,
        expected: &Type,
        actual: &Type,
        value: &Expr,
        span: Span,
    ) -> Result<(), LangError> {
        if expected == actual {
            return Ok(());
        }
        if matches!(expected, Type::Ptr(_) | Type::Fn)
            && actual == &Type::Int
            && matches!(value.kind, ExprKind::Int(0))
        {
            return Ok(());
        }
        Err(LangError::ty(
            span,
            format!("expected `{expected}`, found `{actual}`"),
        ))
    }

    fn is_lvalue(&self, e: &Expr) -> bool {
        match &e.kind {
            ExprKind::Var(name) => {
                // A function name is not an l-value.
                self.lookup(name).is_some()
            }
            ExprKind::Deref(_)
            | ExprKind::Index(..)
            | ExprKind::Field(..)
            | ExprKind::ArrowField(..) => true,
            _ => false,
        }
    }

    fn check_expr(&mut self, e: &Expr) -> Result<Type, LangError> {
        let ty = self.infer(e)?;
        self.types.insert(e.id, ty.clone());
        Ok(ty)
    }

    fn infer(&mut self, e: &Expr) -> Result<Type, LangError> {
        match &e.kind {
            ExprKind::Int(_) => Ok(Type::Int),
            ExprKind::Var(name) => match self.lookup(name) {
                Some(t) => Ok(t.clone()),
                None => Err(LangError::ty(
                    e.span,
                    format!("undefined variable `{name}`"),
                )),
            },
            ExprKind::Unary(op, a) => {
                let t = self.check_expr(a)?;
                match op {
                    UnOp::Neg => {
                        if t == Type::Int {
                            Ok(Type::Int)
                        } else {
                            Err(LangError::ty(e.span, format!("cannot negate `{t}`")))
                        }
                    }
                    UnOp::Not => {
                        if t.is_scalar() {
                            Ok(Type::Int)
                        } else {
                            Err(LangError::ty(e.span, format!("cannot apply `!` to `{t}`")))
                        }
                    }
                }
            }
            ExprKind::Binary(op, a, b) => {
                let ta = self.check_expr(a)?;
                let tb = self.check_expr(b)?;
                use BinOp::*;
                match op {
                    Add | Sub | Mul | Div | Rem => {
                        if ta == Type::Int && tb == Type::Int {
                            Ok(Type::Int)
                        } else {
                            Err(LangError::ty(
                                e.span,
                                format!(
                                    "arithmetic needs `int` operands, found `{ta}` {op} `{tb}`"
                                ),
                            ))
                        }
                    }
                    Eq | Ne => {
                        let null_ok = (matches!(ta, Type::Ptr(_) | Type::Fn)
                            && matches!(b.kind, ExprKind::Int(0)))
                            || (matches!(tb, Type::Ptr(_) | Type::Fn)
                                && matches!(a.kind, ExprKind::Int(0)));
                        if ta == tb && ta.is_scalar() || null_ok {
                            Ok(Type::Int)
                        } else {
                            Err(LangError::ty(
                                e.span,
                                format!("cannot compare `{ta}` with `{tb}`"),
                            ))
                        }
                    }
                    Lt | Le | Gt | Ge => {
                        if ta == Type::Int && tb == Type::Int {
                            Ok(Type::Int)
                        } else {
                            Err(LangError::ty(
                                e.span,
                                format!("ordering needs `int` operands, found `{ta}` and `{tb}`"),
                            ))
                        }
                    }
                    And | Or => {
                        if ta.is_scalar() && tb.is_scalar() {
                            Ok(Type::Int)
                        } else {
                            Err(LangError::ty(e.span, "logical operands must be scalar"))
                        }
                    }
                }
            }
            ExprKind::Assign(lhs, rhs) => {
                let tl = self.check_expr(lhs)?;
                let tr = self.check_expr(rhs)?;
                if !self.is_lvalue(lhs) {
                    return Err(LangError::ty(
                        lhs.span,
                        "left side of `=` is not assignable",
                    ));
                }
                if !tl.is_scalar() {
                    return Err(LangError::ty(
                        lhs.span,
                        format!("cannot assign aggregate type `{tl}` (copy elements instead)"),
                    ));
                }
                self.require_assignable(&tl, &tr, rhs, e.span)?;
                Ok(tl)
            }
            ExprKind::Index(base, idx) => {
                let tb = self.check_expr(base)?;
                let ti = self.check_expr(idx)?;
                if ti != Type::Int {
                    return Err(LangError::ty(idx.span, "array index must be `int`"));
                }
                match tb {
                    Type::Array(t, _) => Ok(*t),
                    Type::Ptr(t) => Ok(*t),
                    other => Err(LangError::ty(
                        base.span,
                        format!("cannot index into `{other}`"),
                    )),
                }
            }
            ExprKind::Field(base, fname) => {
                let tb = self.check_expr(base)?;
                let Type::Struct(sname) = &tb else {
                    return Err(LangError::ty(
                        base.span,
                        format!("`.` needs a struct, found `{tb}` (use `->` through pointers)"),
                    ));
                };
                self.field_type(sname, fname, e.span)
            }
            ExprKind::ArrowField(base, fname) => {
                let tb = self.check_expr(base)?;
                let Type::Ptr(inner) = &tb else {
                    return Err(LangError::ty(
                        base.span,
                        format!("`->` needs a struct pointer, found `{tb}`"),
                    ));
                };
                let Type::Struct(sname) = inner.as_ref() else {
                    return Err(LangError::ty(
                        base.span,
                        format!("`->` needs a struct pointer, found `{tb}`"),
                    ));
                };
                let sname = sname.clone();
                self.field_type(&sname, fname, e.span)
            }
            ExprKind::Call(name, args) => {
                // Variables shadow functions: a `fn`-typed variable called
                // by name is an indirect call.
                if let Some(t) = self.lookup(name).cloned() {
                    if t == Type::Fn {
                        self.call_targets.insert(e.id, CallTarget::Indirect);
                        return self.check_indirect_args(args, e.span);
                    }
                    return Err(LangError::ty(
                        e.span,
                        format!("`{name}` is a variable of type `{t}`, not callable"),
                    ));
                }
                match name.as_str() {
                    "input" => {
                        if !args.is_empty() {
                            return Err(LangError::ty(e.span, "`input()` takes no arguments"));
                        }
                        self.call_targets.insert(e.id, CallTarget::Input);
                        Ok(Type::Int)
                    }
                    "output" => {
                        if args.len() != 1 {
                            return Err(LangError::ty(e.span, "`output(v)` takes one argument"));
                        }
                        let t = self.check_expr(&args[0])?;
                        if t != Type::Int {
                            return Err(LangError::ty(e.span, "`output` takes an `int`"));
                        }
                        self.call_targets.insert(e.id, CallTarget::Output);
                        Ok(Type::Void)
                    }
                    _ => {
                        let Some(f) = self.program.function(name) else {
                            return Err(LangError::ty(
                                e.span,
                                format!("undefined function `{name}`"),
                            ));
                        };
                        if f.name == "main" {
                            return Err(LangError::ty(e.span, "`main` cannot be called"));
                        }
                        let (ret, ptypes): (Type, Vec<Type>) = (
                            f.ret.clone(),
                            f.params.iter().map(|p| p.ty.clone()).collect(),
                        );
                        if args.len() != ptypes.len() {
                            return Err(LangError::ty(
                                e.span,
                                format!(
                                    "`{name}` expects {} argument(s), got {}",
                                    ptypes.len(),
                                    args.len()
                                ),
                            ));
                        }
                        for (a, pt) in args.iter().zip(&ptypes) {
                            let at = self.check_expr(a)?;
                            self.require_assignable(pt, &at, a, a.span)?;
                        }
                        self.call_targets
                            .insert(e.id, CallTarget::Direct(name.clone()));
                        Ok(ret)
                    }
                }
            }
            ExprKind::CallPtr(callee, args) => {
                let tc = self.check_expr(callee)?;
                if tc != Type::Fn {
                    return Err(LangError::ty(
                        callee.span,
                        format!("indirect call needs a `fn` value, found `{tc}`"),
                    ));
                }
                self.call_targets.insert(e.id, CallTarget::Indirect);
                self.check_indirect_args(args, e.span)
            }
            ExprKind::AddrOf(inner) => {
                if let ExprKind::Var(name) = &inner.kind {
                    if self.lookup(name).is_none() {
                        // &function yields an opaque fn value.
                        if self.program.function(name).is_some() {
                            self.types.insert(inner.id, Type::Fn);
                            return Ok(Type::Fn);
                        }
                        return Err(LangError::ty(
                            inner.span,
                            format!("undefined variable `{name}`"),
                        ));
                    }
                }
                let t = self.check_expr(inner)?;
                if !self.is_lvalue(inner) {
                    return Err(LangError::ty(inner.span, "`&` needs an l-value"));
                }
                Ok(t.ptr_to())
            }
            ExprKind::Deref(inner) => {
                let t = self.check_expr(inner)?;
                match t {
                    Type::Ptr(p) => Ok(*p),
                    // Dereferencing a function pointer yields the function
                    // pointer itself, as in C.
                    Type::Fn => Ok(Type::Fn),
                    other => Err(LangError::ty(
                        inner.span,
                        format!("cannot dereference `{other}`"),
                    )),
                }
            }
            ExprKind::Alloc(ty, count) => {
                self.validate_type(ty, e.span)?;
                let tc = self.check_expr(count)?;
                if tc != Type::Int {
                    return Err(LangError::ty(count.span, "allocation count must be `int`"));
                }
                Ok(ty.clone().ptr_to())
            }
        }
    }

    fn check_indirect_args(&mut self, args: &[Expr], span: Span) -> Result<Type, LangError> {
        for a in args {
            let t = self.check_expr(a)?;
            if !t.is_scalar() {
                return Err(LangError::ty(
                    span,
                    "indirect call arguments must be scalar",
                ));
            }
        }
        // Indirect targets are dynamically checked; statically they yield int.
        Ok(Type::Int)
    }

    fn field_type(&self, sname: &str, fname: &str, span: Span) -> Result<Type, LangError> {
        let Some(def) = self.program.struct_def(sname) else {
            return Err(LangError::ty(span, format!("unknown struct `{sname}`")));
        };
        match def.field(fname) {
            Some((_, t)) => Ok(t.clone()),
            None => Err(LangError::ty(
                span,
                format!("struct `{sname}` has no field `{fname}`"),
            )),
        }
    }
}

fn innermost(ty: &Type) -> &Type {
    match ty {
        Type::Ptr(t) | Type::Array(t, _) => innermost(t),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn ok(src: &str) -> CheckedProgram {
        check(parse(src).unwrap()).unwrap()
    }

    fn err(src: &str) -> String {
        check(parse(src).unwrap()).unwrap_err().to_string()
    }

    #[test]
    fn simple_program_checks() {
        ok("void main(int n) { int i; for (i = 0; i < n; i++) { output(i); } }");
    }

    #[test]
    fn main_required() {
        assert!(err("void f() {}").contains("no `main`"));
    }

    #[test]
    fn main_params_must_be_int() {
        assert!(err("void main(int *p) {}").contains("must be `int`"));
    }

    #[test]
    fn undefined_variable() {
        assert!(err("void main() { x = 1; }").contains("undefined variable"));
    }

    #[test]
    fn arithmetic_type_error() {
        assert!(err("void main() { int *p; p = p + 1; }").contains("arithmetic"));
    }

    #[test]
    fn null_pointer_assignment_ok() {
        ok("void main() { int *p; p = 0; if (p == 0) { output(1); } }");
    }

    #[test]
    fn struct_fields() {
        let src = "struct pt { int x; int y; };
                   void main() { struct pt p; p.x = 1; output(p.x + p.y); }";
        ok(src);
        assert!(err("struct pt { int x; };
             void main() { struct pt p; p.z = 1; }")
        .contains("no field"));
    }

    #[test]
    fn arrow_through_pointer() {
        let src = "struct list { int index; struct list *next; };
                   void main() {
                     struct list *p;
                     p = alloc(struct list, 1);
                     p->next = 0;
                     p->index = 7;
                     output(p->index);
                   }";
        ok(src);
    }

    #[test]
    fn self_embedding_rejected() {
        assert!(err("struct a { struct a inner; }; void main() {}").contains("embeds itself"));
    }

    #[test]
    fn recursive_pointer_allowed() {
        ok("struct a { struct a *next; }; void main() {}");
    }

    #[test]
    fn call_arity_checked() {
        assert!(err("int f(int x) { return x; } void main() { f(1, 2); }")
            .contains("expects 1 argument"));
    }

    #[test]
    fn indirect_call_through_fn_var() {
        let src = "int id(int x) { return x; }
                   void main() { fn g; g = &id; output(g(3)); output((*g)(4)); }";
        let checked = ok(src);
        let indirect = checked
            .call_targets
            .values()
            .filter(|t| **t == CallTarget::Indirect)
            .count();
        assert_eq!(indirect, 2);
    }

    #[test]
    fn builtin_misuse() {
        assert!(err("void main() { input(3); }").contains("takes no arguments"));
        assert!(err("void main() { output(); }").contains("one argument"));
    }

    #[test]
    fn break_outside_loop() {
        assert!(err("void main() { break; }").contains("outside"));
    }

    #[test]
    fn return_type_checked() {
        assert!(err("int f() { return; } void main() { f(); }").contains("missing return value"));
        assert!(
            err("void f() { return 1; } void main() { f(); }").contains("cannot return a value")
        );
    }

    #[test]
    fn aggregate_assignment_rejected() {
        assert!(err("struct pt { int x; };
             void main() { struct pt a; struct pt b; a = b; }")
        .contains("aggregate"));
    }

    #[test]
    fn shadowing_in_nested_scope() {
        ok("void main() { int x; x = 1; { int x; x = 2; } output(x); }");
        assert!(err("void main() { int x; int x; }").contains("already declared"));
    }

    #[test]
    fn array_indexing() {
        ok("int buf[16]; void main() { buf[0] = 1; output(buf[0]); }");
        assert!(err("void main() { int x; x[0] = 1; }").contains("cannot index"));
    }

    #[test]
    fn pointer_indexing() {
        ok("void main() { int *p; p = alloc(int, 8); p[3] = 5; output(p[3]); }");
    }

    #[test]
    fn types_recorded_for_all_nodes() {
        let src = "void main(int n) { int i; i = n * 2 + 1; output(i); }";
        let checked = ok(src);
        // Every expression node that was visited has a type.
        assert!(!checked.types.is_empty());
        for t in checked.types.values() {
            assert_ne!(format!("{t:?}"), "");
        }
    }
}
