//! Abstract syntax tree of the mini-C source language.
//!
//! Every expression carries a unique [`NodeId`] assigned by the parser; the
//! type checker publishes inferred types in a side table keyed by those ids
//! so later phases (IR lowering, points-to analysis) never re-infer.

use crate::token::Span;
use std::fmt;

/// Unique id of an expression node within one parsed [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A source-level type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// 64-bit signed integer (the only scalar type, as in the paper's
    /// examples).
    Int,
    /// Absence of a value (function returns only).
    Void,
    /// Pointer to another type.
    Ptr(Box<Type>),
    /// Fixed-size array (local/global declarations only).
    Array(Box<Type>, u64),
    /// A named struct.
    Struct(String),
    /// Opaque function pointer (targets resolved by points-to analysis).
    Fn,
}

impl Type {
    /// Pointer to `self`.
    pub fn ptr_to(self) -> Type {
        Type::Ptr(Box::new(self))
    }

    /// Returns the pointee type if this is a pointer.
    pub fn pointee(&self) -> Option<&Type> {
        match self {
            Type::Ptr(t) => Some(t),
            _ => None,
        }
    }

    /// Returns the element type if this is an array.
    pub fn element(&self) -> Option<&Type> {
        match self {
            Type::Array(t, _) => Some(t),
            _ => None,
        }
    }

    /// Returns `true` for types that occupy a single scalar slot at run
    /// time (ints, pointers, function pointers).
    pub fn is_scalar(&self) -> bool {
        matches!(self, Type::Int | Type::Ptr(_) | Type::Fn)
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => write!(f, "int"),
            Type::Void => write!(f, "void"),
            Type::Ptr(t) => write!(f, "{t}*"),
            Type::Array(t, n) => write!(f, "{t}[{n}]"),
            Type::Struct(name) => write!(f, "struct {name}"),
            Type::Fn => write!(f, "fn"),
        }
    }
}

/// A struct definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// Ordered fields: `(name, type)`.
    pub fields: Vec<(String, Type)>,
    /// Location of the definition.
    pub span: Span,
}

impl StructDef {
    /// Index and type of a field, if present.
    pub fn field(&self, name: &str) -> Option<(usize, &Type)> {
        self.fields
            .iter()
            .enumerate()
            .find(|(_, (n, _))| n == name)
            .map(|(i, (_, t))| (i, t))
    }
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Parameter type.
    pub ty: Type,
    /// Location.
    pub span: Span,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Parameters, in order.
    pub params: Vec<Param>,
    /// Return type.
    pub ret: Type,
    /// Body.
    pub body: Block,
    /// Location of the definition.
    pub span: Span,
}

/// A `{ ... }` block of statements.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Block {
    /// Statements in source order.
    pub stmts: Vec<Stmt>,
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// Local variable declaration with optional initializer.
    Decl {
        /// Variable name.
        name: String,
        /// Declared type.
        ty: Type,
        /// Optional initializer expression.
        init: Option<Expr>,
        /// Location.
        span: Span,
    },
    /// Expression statement (assignment, call, ...).
    Expr(Expr),
    /// `if (cond) then [else otherwise]`.
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch.
        then: Block,
        /// Optional else-branch.
        otherwise: Option<Block>,
        /// Location.
        span: Span,
    },
    /// `while (cond) body`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Block,
        /// Location.
        span: Span,
    },
    /// `for (init; cond; step) body`. All three headers are optional.
    For {
        /// Initialization (declaration or expression).
        init: Option<Box<Stmt>>,
        /// Continuation condition (`None` means `true`).
        cond: Option<Expr>,
        /// Step expression.
        step: Option<Expr>,
        /// Loop body.
        body: Block,
        /// Location.
        span: Span,
    },
    /// `return [expr];`.
    Return {
        /// Returned value, if any.
        value: Option<Expr>,
        /// Location.
        span: Span,
    },
    /// `break;`.
    Break(Span),
    /// `continue;`.
    Continue(Span),
    /// Nested block.
    Block(Block),
}

impl Stmt {
    /// Location of the statement.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Decl { span, .. }
            | Stmt::If { span, .. }
            | Stmt::While { span, .. }
            | Stmt::For { span, .. }
            | Stmt::Return { span, .. } => *span,
            Stmt::Expr(e) => e.span,
            Stmt::Break(s) | Stmt::Continue(s) => *s,
            Stmt::Block(b) => b.stmts.first().map(Stmt::span).unwrap_or_default(),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (truncating)
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    And,
    /// `||` (short-circuit)
    Or,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        };
        write!(f, "{s}")
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation `-`.
    Neg,
    /// Logical not `!`.
    Not,
}

/// An expression with its id and location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expr {
    /// Unique node id within the program.
    pub id: NodeId,
    /// What kind of expression.
    pub kind: ExprKind,
    /// Location.
    pub span: Span,
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprKind {
    /// Integer literal.
    Int(i64),
    /// Variable reference.
    Var(String),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Assignment `lhs = rhs` (lhs must be an l-value).
    Assign(Box<Expr>, Box<Expr>),
    /// Array indexing `base[index]`.
    Index(Box<Expr>, Box<Expr>),
    /// Struct field access through a value: `s.field`.
    Field(Box<Expr>, String),
    /// Struct field access through a pointer: `p->field`.
    ArrowField(Box<Expr>, String),
    /// Direct call `name(args)`. Builtins (`input`, `output`) included.
    Call(String, Vec<Expr>),
    /// Indirect call through a function-pointer expression.
    CallPtr(Box<Expr>, Vec<Expr>),
    /// Address-of `&lvalue` (or `&function`, producing a `fn` value).
    AddrOf(Box<Expr>),
    /// Pointer dereference `*ptr`.
    Deref(Box<Expr>),
    /// Dynamic allocation `alloc(T, count)` producing a `T*`.
    Alloc(Type, Box<Expr>),
}

/// A global variable declaration (zero-initialized).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Global {
    /// Variable name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Location.
    pub span: Span,
}

/// A whole translation unit.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// Struct definitions.
    pub structs: Vec<StructDef>,
    /// Global variables.
    pub globals: Vec<Global>,
    /// Function definitions (including `main`).
    pub functions: Vec<Function>,
    /// Total number of expression nodes (ids are `0..node_count`).
    pub node_count: u32,
}

impl Program {
    /// Looks up a struct definition by name.
    pub fn struct_def(&self, name: &str) -> Option<&StructDef> {
        self.structs.iter().find(|s| s.name == name)
    }

    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// The `main` function, if present.
    pub fn main(&self) -> Option<&Function> {
        self.function("main")
    }
}

/// Names of the built-in functions recognized by the front end.
///
/// * `input()` — read one integer from the client's input device (I/O).
/// * `output(v)` — write one integer to the client's output device (I/O).
pub const BUILTINS: &[&str] = &["input", "output"];

/// Returns `true` if `name` is a built-in I/O function.
pub fn is_builtin(name: &str) -> bool {
    BUILTINS.contains(&name)
}
