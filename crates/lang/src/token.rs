//! Tokens of the mini-C source language.

use std::fmt;

/// A source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl Span {
    /// Creates a span at the given line and column.
    pub fn new(line: u32, col: u32) -> Self {
        Span { line, col }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Kinds of tokens produced by the lexer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier (variable, function, struct or field name).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// `int` keyword.
    KwInt,
    /// `void` keyword.
    KwVoid,
    /// `struct` keyword.
    KwStruct,
    /// `fn` keyword (opaque function-pointer type).
    KwFn,
    /// `if`.
    KwIf,
    /// `else`.
    KwElse,
    /// `while`.
    KwWhile,
    /// `for`.
    KwFor,
    /// `return`.
    KwReturn,
    /// `break`.
    KwBreak,
    /// `continue`.
    KwContinue,
    /// `alloc` builtin (dynamic allocation).
    KwAlloc,
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `{`.
    LBrace,
    /// `}`.
    RBrace,
    /// `[`.
    LBracket,
    /// `]`.
    RBracket,
    /// `;`.
    Semi,
    /// `,`.
    Comma,
    /// `.`.
    Dot,
    /// `->`.
    Arrow,
    /// `=`.
    Assign,
    /// `==`.
    Eq,
    /// `!=`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Star,
    /// `/`.
    Slash,
    /// `%`.
    Percent,
    /// `!`.
    Bang,
    /// `&`.
    Amp,
    /// `&&`.
    AndAnd,
    /// `||`.
    OrOr,
    /// `++`.
    PlusPlus,
    /// `--`.
    MinusMinus,
    /// `+=`.
    PlusAssign,
    /// `-=`.
    MinusAssign,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use TokenKind::*;
        match self {
            Ident(s) => write!(f, "identifier `{s}`"),
            Int(v) => write!(f, "integer `{v}`"),
            KwInt => write!(f, "`int`"),
            KwVoid => write!(f, "`void`"),
            KwStruct => write!(f, "`struct`"),
            KwFn => write!(f, "`fn`"),
            KwIf => write!(f, "`if`"),
            KwElse => write!(f, "`else`"),
            KwWhile => write!(f, "`while`"),
            KwFor => write!(f, "`for`"),
            KwReturn => write!(f, "`return`"),
            KwBreak => write!(f, "`break`"),
            KwContinue => write!(f, "`continue`"),
            KwAlloc => write!(f, "`alloc`"),
            LParen => write!(f, "`(`"),
            RParen => write!(f, "`)`"),
            LBrace => write!(f, "`{{`"),
            RBrace => write!(f, "`}}`"),
            LBracket => write!(f, "`[`"),
            RBracket => write!(f, "`]`"),
            Semi => write!(f, "`;`"),
            Comma => write!(f, "`,`"),
            Dot => write!(f, "`.`"),
            Arrow => write!(f, "`->`"),
            Assign => write!(f, "`=`"),
            Eq => write!(f, "`==`"),
            Ne => write!(f, "`!=`"),
            Lt => write!(f, "`<`"),
            Le => write!(f, "`<=`"),
            Gt => write!(f, "`>`"),
            Ge => write!(f, "`>=`"),
            Plus => write!(f, "`+`"),
            Minus => write!(f, "`-`"),
            Star => write!(f, "`*`"),
            Slash => write!(f, "`/`"),
            Percent => write!(f, "`%`"),
            Bang => write!(f, "`!`"),
            Amp => write!(f, "`&`"),
            AndAnd => write!(f, "`&&`"),
            OrOr => write!(f, "`||`"),
            PlusPlus => write!(f, "`++`"),
            MinusMinus => write!(f, "`--`"),
            PlusAssign => write!(f, "`+=`"),
            MinusAssign => write!(f, "`-=`"),
            Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where it starts in the source.
    pub span: Span,
}
