//! Recursive-descent parser for the mini-C source language.

use crate::ast::*;
use crate::error::LangError;
use crate::lexer::lex;
use crate::token::{Span, Token, TokenKind};

/// Parses a whole translation unit.
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
///
/// # Examples
///
/// ```
/// use offload_lang::parse;
///
/// let program = parse("void main(int n) { int i; for (i = 0; i < n; i++) { output(i); } }")?;
/// assert_eq!(program.functions.len(), 1);
/// assert_eq!(program.functions[0].params[0].name, "n");
/// # Ok::<(), offload_lang::LangError>(())
/// ```
pub fn parse(src: &str) -> Result<Program, LangError> {
    let tokens = lex(src)?;
    Parser {
        tokens,
        pos: 0,
        next_id: 0,
    }
    .program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    next_id: u32,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, n: usize) -> &TokenKind {
        let i = (self.pos + n).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<(), LangError> {
        if self.peek() == &kind {
            self.bump();
            Ok(())
        } else {
            Err(LangError::parse(
                self.span(),
                format!("expected {kind}, found {}", self.peek()),
            ))
        }
    }

    fn fresh_id(&mut self) -> NodeId {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        id
    }

    fn mk(&mut self, kind: ExprKind, span: Span) -> Expr {
        Expr {
            id: self.fresh_id(),
            kind,
            span,
        }
    }

    /// Deep-clones an expression with fresh node ids (used by desugaring,
    /// which must not duplicate ids).
    fn renumber(&mut self, e: &Expr) -> Expr {
        let kind = match &e.kind {
            ExprKind::Int(v) => ExprKind::Int(*v),
            ExprKind::Var(n) => ExprKind::Var(n.clone()),
            ExprKind::Unary(op, a) => ExprKind::Unary(*op, Box::new(self.renumber(a))),
            ExprKind::Binary(op, a, b) => {
                ExprKind::Binary(*op, Box::new(self.renumber(a)), Box::new(self.renumber(b)))
            }
            ExprKind::Assign(a, b) => {
                ExprKind::Assign(Box::new(self.renumber(a)), Box::new(self.renumber(b)))
            }
            ExprKind::Index(a, b) => {
                ExprKind::Index(Box::new(self.renumber(a)), Box::new(self.renumber(b)))
            }
            ExprKind::Field(a, f) => ExprKind::Field(Box::new(self.renumber(a)), f.clone()),
            ExprKind::ArrowField(a, f) => {
                ExprKind::ArrowField(Box::new(self.renumber(a)), f.clone())
            }
            ExprKind::Call(n, args) => {
                ExprKind::Call(n.clone(), args.iter().map(|a| self.renumber(a)).collect())
            }
            ExprKind::CallPtr(c, args) => ExprKind::CallPtr(
                Box::new(self.renumber(c)),
                args.iter().map(|a| self.renumber(a)).collect(),
            ),
            ExprKind::AddrOf(a) => ExprKind::AddrOf(Box::new(self.renumber(a))),
            ExprKind::Deref(a) => ExprKind::Deref(Box::new(self.renumber(a))),
            ExprKind::Alloc(t, a) => ExprKind::Alloc(t.clone(), Box::new(self.renumber(a))),
        };
        let span = e.span;
        self.mk(kind, span)
    }

    fn program(mut self) -> Result<Program, LangError> {
        let mut program = Program::default();
        while self.peek() != &TokenKind::Eof {
            if self.peek() == &TokenKind::KwStruct && self.peek_at(2) == &TokenKind::LBrace {
                program.structs.push(self.struct_def()?);
                continue;
            }
            // A function or global declaration: type, stars, name, then
            // `(` means function.
            let span = self.span();
            let base = self.base_type()?;
            let ty = self.pointer_suffix(base);
            let name = self.ident()?;
            if self.peek() == &TokenKind::LParen {
                program.functions.push(self.function(ty, name, span)?);
            } else {
                let ty = self.array_suffix(ty)?;
                self.expect(TokenKind::Semi)?;
                program.globals.push(Global { name, ty, span });
            }
        }
        program.node_count = self.next_id;
        Ok(program)
    }

    fn ident(&mut self) -> Result<String, LangError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => Err(LangError::parse(
                self.span(),
                format!("expected identifier, found {other}"),
            )),
        }
    }

    fn base_type(&mut self) -> Result<Type, LangError> {
        match self.peek().clone() {
            TokenKind::KwInt => {
                self.bump();
                Ok(Type::Int)
            }
            TokenKind::KwVoid => {
                self.bump();
                Ok(Type::Void)
            }
            TokenKind::KwFn => {
                self.bump();
                Ok(Type::Fn)
            }
            TokenKind::KwStruct => {
                self.bump();
                let name = self.ident()?;
                Ok(Type::Struct(name))
            }
            other => Err(LangError::parse(
                self.span(),
                format!("expected a type, found {other}"),
            )),
        }
    }

    fn pointer_suffix(&mut self, mut ty: Type) -> Type {
        while self.eat(&TokenKind::Star) {
            ty = ty.ptr_to();
        }
        ty
    }

    fn array_suffix(&mut self, ty: Type) -> Result<Type, LangError> {
        let mut dims = Vec::new();
        while self.eat(&TokenKind::LBracket) {
            match self.bump() {
                TokenKind::Int(n) if n >= 0 => dims.push(n as u64),
                other => {
                    return Err(LangError::parse(
                        self.span(),
                        format!("expected array size, found {other}"),
                    ))
                }
            }
            self.expect(TokenKind::RBracket)?;
        }
        // `int a[2][3]` is an array of 2 arrays of 3 ints.
        let mut out = ty;
        for d in dims.into_iter().rev() {
            out = Type::Array(Box::new(out), d);
        }
        Ok(out)
    }

    fn struct_def(&mut self) -> Result<StructDef, LangError> {
        let span = self.span();
        self.expect(TokenKind::KwStruct)?;
        let name = self.ident()?;
        self.expect(TokenKind::LBrace)?;
        let mut fields = Vec::new();
        while self.peek() != &TokenKind::RBrace {
            let base = self.base_type()?;
            let ty = self.pointer_suffix(base);
            let fname = self.ident()?;
            let ty = self.array_suffix(ty)?;
            self.expect(TokenKind::Semi)?;
            fields.push((fname, ty));
        }
        self.expect(TokenKind::RBrace)?;
        self.expect(TokenKind::Semi)?;
        Ok(StructDef { name, fields, span })
    }

    fn function(&mut self, ret: Type, name: String, span: Span) -> Result<Function, LangError> {
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if self.peek() != &TokenKind::RParen {
            loop {
                let pspan = self.span();
                let base = self.base_type()?;
                let ty = self.pointer_suffix(base);
                let pname = self.ident()?;
                params.push(Param {
                    name: pname,
                    ty,
                    span: pspan,
                });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        let body = self.block()?;
        Ok(Function {
            name,
            params,
            ret,
            body,
            span,
        })
    }

    fn block(&mut self) -> Result<Block, LangError> {
        self.expect(TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != &TokenKind::RBrace {
            if self.peek() == &TokenKind::Eof {
                return Err(LangError::parse(self.span(), "unterminated block"));
            }
            stmts.push(self.stmt()?);
        }
        self.expect(TokenKind::RBrace)?;
        Ok(Block { stmts })
    }

    fn is_type_start(&self) -> bool {
        matches!(
            self.peek(),
            TokenKind::KwInt | TokenKind::KwVoid | TokenKind::KwFn | TokenKind::KwStruct
        )
    }

    fn stmt(&mut self) -> Result<Stmt, LangError> {
        let span = self.span();
        match self.peek() {
            TokenKind::LBrace => Ok(Stmt::Block(self.block()?)),
            TokenKind::KwIf => self.if_stmt(),
            TokenKind::KwWhile => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let body = self.block_or_single()?;
                Ok(Stmt::While { cond, body, span })
            }
            TokenKind::KwFor => self.for_stmt(),
            TokenKind::KwReturn => {
                self.bump();
                let value = if self.peek() == &TokenKind::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Return { value, span })
            }
            TokenKind::KwBreak => {
                self.bump();
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Break(span))
            }
            TokenKind::KwContinue => {
                self.bump();
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Continue(span))
            }
            _ if self.is_type_start() => {
                let s = self.decl_stmt()?;
                self.expect(TokenKind::Semi)?;
                Ok(s)
            }
            _ => {
                let e = self.expr()?;
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    fn decl_stmt(&mut self) -> Result<Stmt, LangError> {
        let span = self.span();
        let base = self.base_type()?;
        let ty = self.pointer_suffix(base);
        let name = self.ident()?;
        let ty = self.array_suffix(ty)?;
        let init = if self.eat(&TokenKind::Assign) {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Stmt::Decl {
            name,
            ty,
            init,
            span,
        })
    }

    fn if_stmt(&mut self) -> Result<Stmt, LangError> {
        let span = self.span();
        self.expect(TokenKind::KwIf)?;
        self.expect(TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(TokenKind::RParen)?;
        let then = self.block_or_single()?;
        let otherwise = if self.eat(&TokenKind::KwElse) {
            if self.peek() == &TokenKind::KwIf {
                let nested = self.if_stmt()?;
                Some(Block {
                    stmts: vec![nested],
                })
            } else {
                Some(self.block_or_single()?)
            }
        } else {
            None
        };
        Ok(Stmt::If {
            cond,
            then,
            otherwise,
            span,
        })
    }

    fn for_stmt(&mut self) -> Result<Stmt, LangError> {
        let span = self.span();
        self.expect(TokenKind::KwFor)?;
        self.expect(TokenKind::LParen)?;
        let init = if self.peek() == &TokenKind::Semi {
            self.bump();
            None
        } else if self.is_type_start() {
            let d = self.decl_stmt()?;
            self.expect(TokenKind::Semi)?;
            Some(Box::new(d))
        } else {
            let e = self.expr()?;
            self.expect(TokenKind::Semi)?;
            Some(Box::new(Stmt::Expr(e)))
        };
        let cond = if self.peek() == &TokenKind::Semi {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect(TokenKind::Semi)?;
        let step = if self.peek() == &TokenKind::RParen {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect(TokenKind::RParen)?;
        let body = self.block_or_single()?;
        Ok(Stmt::For {
            init,
            cond,
            step,
            body,
            span,
        })
    }

    fn block_or_single(&mut self) -> Result<Block, LangError> {
        if self.peek() == &TokenKind::LBrace {
            self.block()
        } else {
            Ok(Block {
                stmts: vec![self.stmt()?],
            })
        }
    }

    // ---- expressions ----

    fn expr(&mut self) -> Result<Expr, LangError> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr, LangError> {
        let lhs = self.logic_or()?;
        let span = self.span();
        match self.peek() {
            TokenKind::Assign => {
                self.bump();
                let rhs = self.assignment()?;
                Ok(self.mk(ExprKind::Assign(Box::new(lhs), Box::new(rhs)), span))
            }
            TokenKind::PlusAssign | TokenKind::MinusAssign => {
                let op = if self.bump() == TokenKind::PlusAssign {
                    BinOp::Add
                } else {
                    BinOp::Sub
                };
                let rhs = self.assignment()?;
                let lhs2 = self.renumber(&lhs);
                let sum = self.mk(ExprKind::Binary(op, Box::new(lhs2), Box::new(rhs)), span);
                Ok(self.mk(ExprKind::Assign(Box::new(lhs), Box::new(sum)), span))
            }
            _ => Ok(lhs),
        }
    }

    fn logic_or(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.logic_and()?;
        while self.peek() == &TokenKind::OrOr {
            let span = self.span();
            self.bump();
            let rhs = self.logic_and()?;
            lhs = self.mk(
                ExprKind::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs)),
                span,
            );
        }
        Ok(lhs)
    }

    fn logic_and(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.equality()?;
        while self.peek() == &TokenKind::AndAnd {
            let span = self.span();
            self.bump();
            let rhs = self.equality()?;
            lhs = self.mk(
                ExprKind::Binary(BinOp::And, Box::new(lhs), Box::new(rhs)),
                span,
            );
        }
        Ok(lhs)
    }

    fn equality(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.relational()?;
        loop {
            let op = match self.peek() {
                TokenKind::Eq => BinOp::Eq,
                TokenKind::Ne => BinOp::Ne,
                _ => return Ok(lhs),
            };
            let span = self.span();
            self.bump();
            let rhs = self.relational()?;
            lhs = self.mk(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span);
        }
    }

    fn relational(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.additive()?;
        loop {
            let op = match self.peek() {
                TokenKind::Lt => BinOp::Lt,
                TokenKind::Le => BinOp::Le,
                TokenKind::Gt => BinOp::Gt,
                TokenKind::Ge => BinOp::Ge,
                _ => return Ok(lhs),
            };
            let span = self.span();
            self.bump();
            let rhs = self.additive()?;
            lhs = self.mk(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span);
        }
    }

    fn additive(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            let span = self.span();
            self.bump();
            let rhs = self.multiplicative()?;
            lhs = self.mk(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span);
        }
    }

    fn multiplicative(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Rem,
                _ => return Ok(lhs),
            };
            let span = self.span();
            self.bump();
            let rhs = self.unary()?;
            lhs = self.mk(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span);
        }
    }

    fn unary(&mut self) -> Result<Expr, LangError> {
        let span = self.span();
        match self.peek() {
            TokenKind::Minus => {
                self.bump();
                let e = self.unary()?;
                Ok(self.mk(ExprKind::Unary(UnOp::Neg, Box::new(e)), span))
            }
            TokenKind::Bang => {
                self.bump();
                let e = self.unary()?;
                Ok(self.mk(ExprKind::Unary(UnOp::Not, Box::new(e)), span))
            }
            TokenKind::Star => {
                self.bump();
                let e = self.unary()?;
                Ok(self.mk(ExprKind::Deref(Box::new(e)), span))
            }
            TokenKind::Amp => {
                self.bump();
                let e = self.unary()?;
                Ok(self.mk(ExprKind::AddrOf(Box::new(e)), span))
            }
            TokenKind::PlusPlus | TokenKind::MinusMinus => {
                let op = if self.bump() == TokenKind::PlusPlus {
                    BinOp::Add
                } else {
                    BinOp::Sub
                };
                let e = self.unary()?;
                self.incr_decr(e, op, span)
            }
            _ => self.postfix(),
        }
    }

    /// Desugars `e++` / `++e` to `e = e (+|-) 1`.
    ///
    /// Note: unlike C, the postfix form also yields the *new* value; all
    /// code in this repository only uses the operators in value-discarding
    /// positions (for-loop steps), where the distinction is unobservable.
    fn incr_decr(&mut self, e: Expr, op: BinOp, span: Span) -> Result<Expr, LangError> {
        let copy = self.renumber(&e);
        let one = self.mk(ExprKind::Int(1), span);
        let sum = self.mk(ExprKind::Binary(op, Box::new(copy), Box::new(one)), span);
        Ok(self.mk(ExprKind::Assign(Box::new(e), Box::new(sum)), span))
    }

    fn postfix(&mut self) -> Result<Expr, LangError> {
        let mut e = self.primary()?;
        loop {
            let span = self.span();
            match self.peek() {
                TokenKind::LParen => {
                    self.bump();
                    let args = self.call_args()?;
                    e = match e.kind {
                        ExprKind::Var(name) => self.mk(ExprKind::Call(name, args), e.span),
                        _ => self.mk(ExprKind::CallPtr(Box::new(e), args), span),
                    };
                }
                TokenKind::LBracket => {
                    self.bump();
                    let idx = self.expr()?;
                    self.expect(TokenKind::RBracket)?;
                    e = self.mk(ExprKind::Index(Box::new(e), Box::new(idx)), span);
                }
                TokenKind::Dot => {
                    self.bump();
                    let field = self.ident()?;
                    e = self.mk(ExprKind::Field(Box::new(e), field), span);
                }
                TokenKind::Arrow => {
                    self.bump();
                    let field = self.ident()?;
                    e = self.mk(ExprKind::ArrowField(Box::new(e), field), span);
                }
                TokenKind::PlusPlus | TokenKind::MinusMinus => {
                    let op = if self.bump() == TokenKind::PlusPlus {
                        BinOp::Add
                    } else {
                        BinOp::Sub
                    };
                    e = self.incr_decr(e, op, span)?;
                }
                _ => return Ok(e),
            }
        }
    }

    fn call_args(&mut self) -> Result<Vec<Expr>, LangError> {
        let mut args = Vec::new();
        if self.peek() != &TokenKind::RParen {
            loop {
                args.push(self.expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        Ok(args)
    }

    fn primary(&mut self) -> Result<Expr, LangError> {
        let span = self.span();
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(self.mk(ExprKind::Int(v), span))
            }
            TokenKind::Ident(name) => {
                self.bump();
                Ok(self.mk(ExprKind::Var(name), span))
            }
            TokenKind::KwAlloc => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let base = self.base_type()?;
                let ty = self.pointer_suffix(base);
                self.expect(TokenKind::Comma)?;
                let count = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(self.mk(ExprKind::Alloc(ty, Box::new(count)), span))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            other => Err(LangError::parse(
                span,
                format!("expected an expression, found {other}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_empty_main() {
        let p = parse("void main() {}").unwrap();
        assert_eq!(p.functions.len(), 1);
        assert!(p.functions[0].params.is_empty());
        assert_eq!(p.functions[0].ret, Type::Void);
    }

    #[test]
    fn parses_struct_and_global() {
        let p = parse(
            "struct list { int index; struct list *next; };
             int buffer[4096];
             void main() {}",
        )
        .unwrap();
        assert_eq!(p.structs.len(), 1);
        assert_eq!(
            p.structs[0].fields[1].1,
            Type::Struct("list".into()).ptr_to()
        );
        assert_eq!(p.globals.len(), 1);
        assert_eq!(p.globals[0].ty, Type::Array(Box::new(Type::Int), 4096));
    }

    #[test]
    fn parses_pointer_return_type() {
        let p = parse("struct list { int x; }; struct list *f(int n) { return 0; } void main() {}")
            .unwrap();
        assert_eq!(p.functions[0].ret, Type::Struct("list".into()).ptr_to());
    }

    #[test]
    fn parses_for_loop_with_decl() {
        let p = parse("void main(int n) { for (int i = 0; i < n; i++) { output(i); } }").unwrap();
        let Stmt::For {
            init, cond, step, ..
        } = &p.functions[0].body.stmts[0]
        else {
            panic!("expected for");
        };
        assert!(matches!(init.as_deref(), Some(Stmt::Decl { .. })));
        assert!(cond.is_some());
        assert!(step.is_some());
    }

    #[test]
    fn desugars_increment() {
        let p = parse("void main() { int i; i++; }").unwrap();
        let Stmt::Expr(e) = &p.functions[0].body.stmts[1] else {
            panic!()
        };
        assert!(matches!(e.kind, ExprKind::Assign(..)));
    }

    #[test]
    fn desugars_plus_assign() {
        let p = parse("void main() { int i; i += 5; }").unwrap();
        let Stmt::Expr(e) = &p.functions[0].body.stmts[1] else {
            panic!()
        };
        let ExprKind::Assign(_, rhs) = &e.kind else {
            panic!()
        };
        assert!(matches!(rhs.kind, ExprKind::Binary(BinOp::Add, ..)));
    }

    #[test]
    fn precedence() {
        let p = parse("void main() { int x; x = 1 + 2 * 3; }").unwrap();
        let Stmt::Expr(e) = &p.functions[0].body.stmts[1] else {
            panic!()
        };
        let ExprKind::Assign(_, rhs) = &e.kind else {
            panic!()
        };
        let ExprKind::Binary(BinOp::Add, _, r) = &rhs.kind else {
            panic!("expected + at top")
        };
        assert!(matches!(r.kind, ExprKind::Binary(BinOp::Mul, ..)));
    }

    #[test]
    fn parses_pointer_chain_and_fields() {
        let src = "struct list { int index; struct list *next; };
                   void main() {
                     struct list *p;
                     p = alloc(struct list, 1);
                     p->index = 3;
                     (*p).index = 4;
                   }";
        let p = parse(src).unwrap();
        assert_eq!(p.functions[0].body.stmts.len(), 4);
    }

    #[test]
    fn parses_indirect_call() {
        let src = "int id(int x) { return x; }
                   void main() { fn g; g = &id; (*g)(3); g(4); }";
        let p = parse(src).unwrap();
        let stmts = &p.functions[1].body.stmts;
        let Stmt::Expr(e) = &stmts[2] else { panic!() };
        assert!(matches!(e.kind, ExprKind::CallPtr(..)));
        // `g(4)` parses as a direct call; name resolution later decides it
        // is actually indirect because `g` is a local variable.
        let Stmt::Expr(e) = &stmts[3] else { panic!() };
        assert!(matches!(e.kind, ExprKind::Call(..)));
    }

    #[test]
    fn node_ids_unique() {
        let src = "void main(int n) { int i; for (i = 0; i < n; i++) { i += 2; } }";
        let p = parse(src).unwrap();
        let mut seen = std::collections::HashSet::new();
        fn walk(e: &Expr, seen: &mut std::collections::HashSet<u32>) {
            assert!(seen.insert(e.id.0), "duplicate node id {}", e.id);
            match &e.kind {
                ExprKind::Unary(_, a)
                | ExprKind::AddrOf(a)
                | ExprKind::Deref(a)
                | ExprKind::Alloc(_, a)
                | ExprKind::Field(a, _)
                | ExprKind::ArrowField(a, _) => walk(a, seen),
                ExprKind::Binary(_, a, b) | ExprKind::Assign(a, b) | ExprKind::Index(a, b) => {
                    walk(a, seen);
                    walk(b, seen);
                }
                ExprKind::Call(_, args) => args.iter().for_each(|a| walk(a, seen)),
                ExprKind::CallPtr(c, args) => {
                    walk(c, seen);
                    args.iter().for_each(|a| walk(a, seen));
                }
                ExprKind::Int(_) | ExprKind::Var(_) => {}
            }
        }
        fn walk_block(b: &Block, seen: &mut std::collections::HashSet<u32>) {
            for s in &b.stmts {
                walk_stmt(s, seen);
            }
        }
        fn walk_stmt(s: &Stmt, seen: &mut std::collections::HashSet<u32>) {
            match s {
                Stmt::Decl { init, .. } => {
                    if let Some(e) = init {
                        walk(e, seen)
                    }
                }
                Stmt::Expr(e) => walk(e, seen),
                Stmt::If {
                    cond,
                    then,
                    otherwise,
                    ..
                } => {
                    walk(cond, seen);
                    walk_block(then, seen);
                    if let Some(b) = otherwise {
                        walk_block(b, seen);
                    }
                }
                Stmt::While { cond, body, .. } => {
                    walk(cond, seen);
                    walk_block(body, seen);
                }
                Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                    ..
                } => {
                    if let Some(s) = init {
                        walk_stmt(s, seen);
                    }
                    if let Some(e) = cond {
                        walk(e, seen);
                    }
                    if let Some(e) = step {
                        walk(e, seen);
                    }
                    walk_block(body, seen);
                }
                Stmt::Return { value, .. } => {
                    if let Some(e) = value {
                        walk(e, seen)
                    }
                }
                Stmt::Break(_) | Stmt::Continue(_) => {}
                Stmt::Block(b) => walk_block(b, seen),
            }
        }
        for f in &p.functions {
            walk_block(&f.body, &mut seen);
        }
    }

    #[test]
    fn error_reports_location() {
        let err = parse("void main() { int ; }").unwrap_err();
        assert!(err.to_string().contains("expected identifier"));
    }

    #[test]
    fn dangling_else_binds_inner() {
        let src = "void main(int a, int b) { if (a) if (b) output(1); else output(2); }";
        let p = parse(src).unwrap();
        let Stmt::If {
            otherwise, then, ..
        } = &p.functions[0].body.stmts[0]
        else {
            panic!()
        };
        assert!(otherwise.is_none(), "outer if must have no else");
        let Stmt::If {
            otherwise: inner_else,
            ..
        } = &then.stmts[0]
        else {
            panic!()
        };
        assert!(inner_else.is_some());
    }
}
