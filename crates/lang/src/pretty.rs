//! Pretty-printer for the mini-C AST.
//!
//! Used by diagnostics and by tests that check the parser via
//! parse → print → parse round-trips.

use crate::ast::*;
use std::fmt::Write;

/// Renders a whole program as source text.
///
/// The output re-parses to an AST equal to the input (modulo node ids and
/// spans).
///
/// # Examples
///
/// ```
/// use offload_lang::{parse, pretty};
///
/// let p = parse("void main(int n){output(n);}")?;
/// let text = pretty(&p);
/// assert!(text.contains("void main(int n)"));
/// # Ok::<(), offload_lang::LangError>(())
/// ```
pub fn pretty(program: &Program) -> String {
    let mut out = String::new();
    for s in &program.structs {
        let _ = writeln!(out, "struct {} {{", s.name);
        for (name, ty) in &s.fields {
            let _ = writeln!(out, "    {};", declarator(ty, name));
        }
        let _ = writeln!(out, "}};");
    }
    for g in &program.globals {
        let _ = writeln!(out, "{};", declarator(&g.ty, &g.name));
    }
    for f in &program.functions {
        let params: Vec<String> = f
            .params
            .iter()
            .map(|p| declarator(&p.ty, &p.name))
            .collect();
        let _ = writeln!(
            out,
            "{} {}({}) {{",
            type_prefix(&f.ret),
            f.name,
            params.join(", ")
        );
        write_block_body(&mut out, &f.body, 1);
        let _ = writeln!(out, "}}");
    }
    out
}

/// Renders a declaration like `int *p` or `int buf[16]` or `struct list *q`.
fn declarator(ty: &Type, name: &str) -> String {
    match ty {
        Type::Array(inner, n) => format!("{}[{n}]", declarator(inner, name)),
        Type::Ptr(inner) => {
            // Collapse pointer stars next to the name: `int **p`.
            let mut stars = String::from("*");
            let mut t = inner.as_ref();
            while let Type::Ptr(next) = t {
                stars.push('*');
                t = next;
            }
            format!("{} {stars}{name}", type_prefix(t))
        }
        other => format!("{} {name}", type_prefix(other)),
    }
}

fn type_prefix(ty: &Type) -> String {
    match ty {
        Type::Int => "int".into(),
        Type::Void => "void".into(),
        Type::Fn => "fn".into(),
        Type::Struct(name) => format!("struct {name}"),
        Type::Ptr(inner) => format!("{}*", type_prefix(inner)),
        Type::Array(inner, n) => format!("{}[{n}]", type_prefix(inner)),
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn write_block_body(out: &mut String, b: &Block, depth: usize) {
    for s in &b.stmts {
        write_stmt(out, s, depth);
    }
}

fn write_stmt(out: &mut String, s: &Stmt, depth: usize) {
    indent(out, depth);
    match s {
        Stmt::Decl { name, ty, init, .. } => {
            let _ = write!(out, "{}", declarator(ty, name));
            if let Some(e) = init {
                let _ = write!(out, " = {}", expr(e));
            }
            out.push_str(";\n");
        }
        Stmt::Expr(e) => {
            let _ = writeln!(out, "{};", expr(e));
        }
        Stmt::If {
            cond,
            then,
            otherwise,
            ..
        } => {
            let _ = writeln!(out, "if ({}) {{", expr(cond));
            write_block_body(out, then, depth + 1);
            indent(out, depth);
            match otherwise {
                Some(b) => {
                    out.push_str("} else {\n");
                    write_block_body(out, b, depth + 1);
                    indent(out, depth);
                    out.push_str("}\n");
                }
                None => out.push_str("}\n"),
            }
        }
        Stmt::While { cond, body, .. } => {
            let _ = writeln!(out, "while ({}) {{", expr(cond));
            write_block_body(out, body, depth + 1);
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            out.push_str("for (");
            match init.as_deref() {
                Some(Stmt::Decl {
                    name,
                    ty,
                    init: Some(e),
                    ..
                }) => {
                    let _ = write!(out, "{} = {}", declarator(ty, name), expr(e));
                }
                Some(Stmt::Decl {
                    name,
                    ty,
                    init: None,
                    ..
                }) => {
                    let _ = write!(out, "{}", declarator(ty, name));
                }
                Some(Stmt::Expr(e)) => {
                    let _ = write!(out, "{}", expr(e));
                }
                _ => {}
            }
            out.push_str("; ");
            if let Some(c) = cond {
                let _ = write!(out, "{}", expr(c));
            }
            out.push_str("; ");
            if let Some(st) = step {
                let _ = write!(out, "{}", expr(st));
            }
            out.push_str(") {\n");
            write_block_body(out, body, depth + 1);
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::Return { value, .. } => match value {
            Some(e) => {
                let _ = writeln!(out, "return {};", expr(e));
            }
            None => out.push_str("return;\n"),
        },
        Stmt::Break(_) => out.push_str("break;\n"),
        Stmt::Continue(_) => out.push_str("continue;\n"),
        Stmt::Block(b) => {
            out.push_str("{\n");
            write_block_body(out, b, depth + 1);
            indent(out, depth);
            out.push_str("}\n");
        }
    }
}

/// Renders an expression (fully parenthesized to sidestep precedence).
pub fn expr(e: &Expr) -> String {
    match &e.kind {
        ExprKind::Int(v) => v.to_string(),
        ExprKind::Var(n) => n.clone(),
        ExprKind::Unary(UnOp::Neg, a) => format!("(-{})", expr(a)),
        ExprKind::Unary(UnOp::Not, a) => format!("(!{})", expr(a)),
        ExprKind::Binary(op, a, b) => format!("({} {op} {})", expr(a), expr(b)),
        ExprKind::Assign(a, b) => format!("{} = {}", expr(a), expr(b)),
        ExprKind::Index(a, i) => format!("{}[{}]", expr(a), expr(i)),
        ExprKind::Field(a, f) => format!("{}.{f}", expr(a)),
        ExprKind::ArrowField(a, f) => format!("{}->{f}", expr(a)),
        ExprKind::Call(name, args) => {
            let args: Vec<String> = args.iter().map(expr).collect();
            format!("{name}({})", args.join(", "))
        }
        ExprKind::CallPtr(c, args) => {
            let args: Vec<String> = args.iter().map(expr).collect();
            format!("({})({})", expr(c), args.join(", "))
        }
        ExprKind::AddrOf(a) => format!("(&{})", expr(a)),
        ExprKind::Deref(a) => format!("(*{})", expr(a)),
        ExprKind::Alloc(ty, n) => format!("alloc({}, {})", type_prefix(ty), expr(n)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn strip(p: &Program) -> Program {
        // Compare programs ignoring ids and spans by re-printing.
        p.clone()
    }

    #[test]
    fn roundtrip_examples() {
        let sources = [
            "void main(int n) { int i; for (i = 0; i < n; i++) { output(i); } }",
            "struct list { int index; struct list *next; };
             void main() { struct list *p; p = alloc(struct list, 1); p->next = 0; }",
            "int f(int a, int b) { if (a < b) { return a; } else { return b; } }
             void main() { output(f(1, 2)); }",
            "int buf[8];
             void main() { while (buf[0] < 10) { buf[0] = buf[0] + 1; } }",
        ];
        for src in sources {
            let p1 = parse(src).unwrap();
            let printed = pretty(&p1);
            let p2 = parse(&printed)
                .unwrap_or_else(|e| panic!("pretty output failed to reparse: {e}\n---\n{printed}"));
            let printed2 = pretty(&strip(&p2));
            assert_eq!(printed, printed2, "pretty must be a fixpoint");
        }
    }

    #[test]
    fn declarators() {
        assert_eq!(declarator(&Type::Int, "x"), "int x");
        assert_eq!(declarator(&Type::Int.ptr_to(), "p"), "int *p");
        assert_eq!(declarator(&Type::Int.ptr_to().ptr_to(), "p"), "int **p");
        assert_eq!(
            declarator(&Type::Array(Box::new(Type::Int), 4), "a"),
            "int a[4]"
        );
        assert_eq!(
            declarator(&Type::Struct("s".into()).ptr_to(), "q"),
            "struct s *q"
        );
    }
}
