//! Loopback stress test of the batched dispatch server: 256 concurrent
//! clients, mixed programs, every response checked bit-for-bit against
//! the sequential in-process oracle.
//!
//! The server half is the full production path — accept loop, session
//! threads, the batching worker pool, the sharded plan cache — so this
//! is the concurrency test for the serving rebuild: interleaving,
//! batching, and cache sharding may never change a single answer, and
//! [`ServerHandle::shutdown`] must drain deterministically and account
//! for every thread it started.

use offload_core::{Analysis, AnalysisOptions, DispatchRoute};
use offload_net::{fingerprint, DispatchClient, OffloadServer, ServerConfig};
use offload_runtime::DeviceModel;
use std::sync::{Arc, Barrier};
use std::time::Duration;

const CLIENTS: usize = 256;
const REQUESTS_PER_CLIENT: usize = 12;

/// Two programs with different fingerprints and different region
/// decompositions, so the plan-cache sharding and per-request program
/// resolution are genuinely exercised.
const PROGRAMS: &[&str] = &[
    "int work(int k) {
         int j; int acc;
         acc = 0;
         for (j = 0; j < k; j++) { acc = acc + j * j % 1000; }
         return acc;
     }
     void main(int n) { output(work(n)); }",
    "int stage1(int k) {
         int j; int acc;
         acc = 0;
         for (j = 0; j < k; j++) { acc = acc + j * 3 % 97; }
         return acc;
     }
     int stage2(int k) {
         int j; int acc;
         acc = 1;
         for (j = 0; j < k; j++) { acc = acc + j * j % 31; }
         return acc;
     }
     void main(int n) { output(stage1(n) + stage2(n)); }",
];

/// The parameter cycled through by client `c` on request `r` — mixed
/// magnitudes so both all-local and offloaded regions are hit.
fn param_for(c: usize, r: usize) -> i64 {
    const SETTINGS: &[i64] = &[0, 3, 40, 1_000, 100_000, 1 << 20];
    SETTINGS[(c + r) % SETTINGS.len()]
}

#[test]
fn stress_256_clients_match_sequential_oracle() {
    let analyses: Vec<Arc<Analysis>> = PROGRAMS
        .iter()
        .map(|src| {
            Arc::new(Analysis::from_source(src, AnalysisOptions::default()).expect("analysis"))
        })
        .collect();
    let fingerprints: Vec<u64> = analyses.iter().map(|a| fingerprint(a)).collect();
    assert_ne!(
        fingerprints[0], fingerprints[1],
        "test programs must have distinct fingerprints"
    );

    let config = ServerConfig::builder()
        .workers(4)
        .max_inflight(CLIENTS + 16)
        .request_timeout(Some(Duration::from_secs(120)))
        .build();
    let mut server = OffloadServer::bind_multi(
        "127.0.0.1:0",
        analyses.clone(),
        DeviceModel::ipaq_testbed(),
        config,
    )
    .expect("server binds");
    let addr = server.addr().to_string();

    // Every client: connect, wait for the whole cohort, then fire a
    // deterministic request schedule and bring the answers home.
    let barrier = Arc::new(Barrier::new(CLIENTS + 1));
    let mut handles = Vec::with_capacity(CLIENTS);
    for c in 0..CLIENTS {
        let addr = addr.clone();
        let barrier = barrier.clone();
        let fp = fingerprints[c % fingerprints.len()];
        let handle = std::thread::Builder::new()
            .name(format!("stress-client-{c}"))
            .stack_size(128 * 1024)
            .spawn(move || -> Result<Vec<(usize, DispatchRoute)>, String> {
                let mut client =
                    DispatchClient::connect_fingerprinted(&addr, fp, Duration::from_secs(120))
                        .map_err(|e| format!("client {c}: connect: {e}"))?;
                barrier.wait();
                let mut got = Vec::with_capacity(REQUESTS_PER_CLIENT);
                for r in 0..REQUESTS_PER_CLIENT {
                    let reply = client
                        .dispatch(&[param_for(c, r)])
                        .map_err(|e| format!("client {c} request {r}: {e}"))?;
                    got.push(reply);
                }
                client.close();
                Ok(got)
            })
            .expect("spawn client thread");
        handles.push(handle);
    }
    barrier.wait();

    let mut served = 0u64;
    for (c, handle) in handles.into_iter().enumerate() {
        let got = handle
            .join()
            .expect("client thread panicked")
            .unwrap_or_else(|e| panic!("{e}"));
        let oracle = &analyses[c % analyses.len()];
        for (r, &(choice, route)) in got.iter().enumerate() {
            served += 1;
            let params = [param_for(c, r)];
            // Bit-for-bit against the sequential oracle: same region
            // index, and the server's route must be the DAG (or the
            // fallback exactly when the oracle also falls back).
            let expect = oracle.decide_linear(&params).expect("oracle decides");
            assert_eq!(
                choice, expect.region_id,
                "client {c} request {r} (n={}): server chose {choice}, oracle {}",
                params[0], expect.region_id
            );
            match expect.route {
                DispatchRoute::LinearScan => assert_eq!(
                    route,
                    DispatchRoute::Dag,
                    "client {c} request {r}: expected the DAG route"
                ),
                DispatchRoute::Fallback => assert_eq!(
                    route,
                    DispatchRoute::Fallback,
                    "client {c} request {r}: expected the fallback route"
                ),
                DispatchRoute::Dag => unreachable!("the oracle never routes through the DAG"),
            }
        }
    }
    let total = (CLIENTS * REQUESTS_PER_CLIENT) as u64;
    assert_eq!(served, total, "every scheduled request must be answered");

    // The server's own accounting must balance: every request either hit
    // or missed the plan cache, and batching never loses or invents work.
    let stats = server.stats();
    assert_eq!(stats.requests, total, "server request count");
    assert_eq!(
        stats.plan_cache_hits + stats.plan_cache_misses,
        total,
        "every dispatch consults the plan cache exactly once"
    );
    assert!(
        stats.plan_cache_hits > stats.plan_cache_misses,
        "steady-state lookups must be cache hits \
         (hits {}, misses {})",
        stats.plan_cache_hits,
        stats.plan_cache_misses
    );
    assert!(stats.batches > 0, "worker pool executed no batches");
    assert!(
        stats.batches <= stats.requests,
        "batch count cannot exceed request count"
    );
    assert!(stats.pointloc_nodes > 0, "primary program has a DAG");

    // Deterministic drain: the join summary accounts for every session
    // ever accepted, every worker, and every request served.
    let summary = server.shutdown();
    assert_eq!(
        summary.sessions_joined, CLIENTS,
        "one session thread per client must be joined"
    );
    assert_eq!(summary.workers_joined, 4, "all dispatch workers joined");
    assert_eq!(summary.requests, total, "drained request accounting");
    assert_eq!(summary.batches, stats.batches, "drained batch accounting");
}

#[test]
fn shutdown_with_no_clients_is_clean() {
    let a =
        Arc::new(Analysis::from_source(PROGRAMS[0], AnalysisOptions::default()).expect("analysis"));
    let mut server = OffloadServer::bind(
        "127.0.0.1:0",
        a,
        DeviceModel::ipaq_testbed(),
        ServerConfig::default(),
    )
    .expect("server binds");
    let summary = server.shutdown();
    assert_eq!(summary.sessions_joined, 0);
    assert_eq!(summary.requests, 0);
    assert!(summary.workers_joined > 0, "workers must be joined");
    // Shutdown is idempotent: a second call (and the eventual Drop)
    // reports the same summary instead of hanging or double-joining.
    let again = server.shutdown();
    assert_eq!(again.workers_joined, summary.workers_joined);
}

#[test]
fn server_config_builder_mirrors_defaults() {
    // The builder starts from `Default` (the back-compat construction
    // path) and overrides exactly what is set — the same contract as
    // `AnalysisOptions::builder()`.
    let d = ServerConfig::default();
    let built = ServerConfig::builder().build();
    assert_eq!(built.request_timeout, d.request_timeout);
    assert_eq!(built.workers, d.workers);
    assert_eq!(built.batch_window, d.batch_window);
    assert_eq!(built.max_batch, d.max_batch);
    assert_eq!(built.cache_shards, d.cache_shards);
    assert_eq!(built.max_inflight, d.max_inflight);
    assert_eq!(built.fail_after_frames, None);

    let tuned = ServerConfig::builder()
        .workers(9)
        .batch_window(Duration::from_micros(50))
        .max_batch(7)
        .cache_shards(3)
        .max_inflight(123)
        .request_timeout(None)
        .fail_after_frames(5)
        .build();
    assert_eq!(tuned.workers, 9);
    assert_eq!(tuned.batch_window, Duration::from_micros(50));
    assert_eq!(tuned.max_batch, 7);
    assert_eq!(tuned.cache_shards, 3);
    assert_eq!(tuned.max_inflight, 123);
    assert_eq!(tuned.request_timeout, None);
    assert_eq!(tuned.fail_after_frames, Some(5));
}

#[test]
fn unknown_fingerprint_is_a_remote_error_not_a_hang() {
    let a =
        Arc::new(Analysis::from_source(PROGRAMS[0], AnalysisOptions::default()).expect("analysis"));
    let server = OffloadServer::bind(
        "127.0.0.1:0",
        a,
        DeviceModel::ipaq_testbed(),
        ServerConfig::default(),
    )
    .expect("server binds");
    let mut client = DispatchClient::connect_fingerprinted(
        server.addr().to_string(),
        0xBAD_F00D,
        Duration::from_secs(30),
    )
    .expect("connects");
    let err = client.dispatch(&[5]).expect_err("unknown program");
    let msg = err.to_string();
    assert!(
        msg.contains("fingerprint") || msg.contains("unknown"),
        "error should name the unknown program: {msg}"
    );
}
