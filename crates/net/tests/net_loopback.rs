//! End-to-end tests of the TCP engine on loopback: behavioural (and
//! virtual-cost) equivalence with the in-process simulator, and graceful
//! degradation under every transport failure we can inject.

use offload_core::{Analysis, AnalysisOptions};
use offload_net::{ClientConfig, OffloadEngine, OffloadServer, RetryPolicy, ServerConfig};
use offload_runtime::{DeviceModel, Simulator};
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

/// A program whose dispatcher splits the parameter space: small `n` runs
/// all-local, large `n` offloads the compute kernel.
const PROGRAM: &str = "
    int work(int k) {
        int j;
        int acc;
        acc = 0;
        for (j = 0; j < k; j++) {
            acc = acc + j * j % 1000;
        }
        return acc;
    }

    void main(int n) {
        output(work(n));
    }";

fn analysis() -> Arc<Analysis> {
    Arc::new(Analysis::from_source(PROGRAM, AnalysisOptions::default()).expect("analysis"))
}

fn client_config(addr: impl Into<String>) -> ClientConfig {
    let mut c = ClientConfig::new(addr);
    // Debug-build interpretation is slow; keep deadlines generous so the
    // tests never time out spuriously under load.
    c.request_timeout = Duration::from_secs(120);
    c
}

/// An address that is guaranteed dead: bind a listener to reserve a port,
/// then drop it.
fn dead_addr() -> String {
    let l = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = l.local_addr().expect("addr").to_string();
    drop(l);
    addr
}

#[test]
fn tcp_run_matches_local_and_simulated() {
    let a = analysis();
    let device = DeviceModel::ipaq_testbed();
    let server = OffloadServer::bind(
        "127.0.0.1:0",
        a.clone(),
        device.clone(),
        ServerConfig::default(),
    )
    .expect("server");
    let engine = OffloadEngine::new(&a, device.clone(), client_config(server.addr().to_string()));
    let sim = Simulator::new(&a, device);

    let mut offloaded_at_least_once = false;
    for n in [3i64, 40, 1_000] {
        let report = engine.run(&[n], &[]).expect("tcp run");
        assert!(!report.fell_back, "n={n}: loopback server is reachable");

        let local = sim.run_local(&[n], &[]).expect("local");
        let (sim_choice, sim_run) = sim.run_dispatched(&[n], &[]).expect("simulated");

        // Byte-identical external behaviour across all three execution
        // modes (the paper's §2 semantic requirement, now over a socket).
        assert_eq!(report.result.outputs, local.outputs, "n={n}: tcp vs local");
        assert_eq!(
            report.result.outputs, sim_run.outputs,
            "n={n}: tcp vs simulated"
        );

        // Same dispatch decision, and exactly the same virtual cost: the
        // ledger rides the wire in exact rational arithmetic.
        assert_eq!(report.choice, sim_choice, "n={n}: dispatch agrees");
        assert_eq!(
            report.result.stats, sim_run.stats,
            "n={n}: virtual stats agree"
        );

        let partitioned = !a.partition.choices[report.choice].is_all_local();
        assert_eq!(
            report.offloaded, partitioned,
            "n={n}: offloaded iff partitioned"
        );
        offloaded_at_least_once |= report.offloaded;
    }
    assert!(
        offloaded_at_least_once,
        "the large setting must actually use the socket"
    );
}

#[test]
fn all_local_dispatch_never_touches_the_network() {
    let a = analysis();
    let device = DeviceModel::ipaq_testbed();
    // Deliberately point at a dead address: a run whose dispatch picks the
    // all-local choice must succeed without ever connecting.
    let engine = OffloadEngine::new(&a, device, client_config(dead_addr()));
    let report = engine.run(&[3], &[]).expect("local run");
    assert!(!report.offloaded);
    assert!(!report.fell_back);
    assert_eq!(report.connect_attempts, 0);
}

#[test]
fn absent_server_falls_back_to_all_local() {
    let a = analysis();
    let device = DeviceModel::ipaq_testbed();
    let mut config = client_config(dead_addr());
    config.connect_timeout = Duration::from_millis(500);
    config.retry = RetryPolicy {
        max_attempts: 2,
        base_delay: Duration::from_millis(1),
        max_delay: Duration::from_millis(10),
    };
    let engine = OffloadEngine::new(&a, device.clone(), config);

    // n large enough that the dispatcher wants to offload.
    let report = engine.run(&[1_000], &[]).expect("fallback run");
    assert!(report.fell_back, "no server: the engine must degrade");
    assert!(!report.offloaded);
    assert_eq!(report.connect_attempts, 2, "retry budget fully spent");
    assert!(report.fallback_reason.is_some());

    let local = Simulator::new(&a, device)
        .run_local(&[1_000], &[])
        .expect("local");
    assert_eq!(
        report.result.outputs, local.outputs,
        "fallback output is correct"
    );
}

#[test]
fn server_killed_mid_run_falls_back() {
    let a = analysis();
    let device = DeviceModel::ipaq_testbed();
    // Crash points that kill the session before the server's half of the
    // work reaches the client: after the handshake (2) and after the
    // server receives control (3). For this program the server's full
    // contribution fits in 4 frames, so later crash points injure nothing.
    for frames in [2u64, 3] {
        let server = OffloadServer::bind(
            "127.0.0.1:0",
            a.clone(),
            device.clone(),
            ServerConfig {
                fail_after_frames: Some(frames),
                ..ServerConfig::default()
            },
        )
        .expect("server");
        let mut config = client_config(server.addr().to_string());
        // The dead socket surfaces quickly; no need for long deadlines.
        config.request_timeout = Duration::from_secs(10);
        config.retry = RetryPolicy::none();
        let engine = OffloadEngine::new(&a, device.clone(), config);

        let report = engine.run(&[1_000], &[]).expect("run with crashing server");
        assert!(
            report.fell_back,
            "server dies after {frames} frames: the engine must degrade"
        );
        let local = Simulator::new(&a, device.clone())
            .run_local(&[1_000], &[])
            .expect("local");
        assert_eq!(
            report.result.outputs, local.outputs,
            "crash after {frames} frames: fallback output is correct"
        );
    }

    // A crash *after* the final exchange is harmless: the client already
    // holds the result, so the run counts as offloaded, not degraded.
    let server = OffloadServer::bind(
        "127.0.0.1:0",
        a.clone(),
        device.clone(),
        ServerConfig {
            fail_after_frames: Some(4),
            ..ServerConfig::default()
        },
    )
    .expect("server");
    let mut config = client_config(server.addr().to_string());
    config.retry = RetryPolicy::none();
    let engine = OffloadEngine::new(&a, device.clone(), config);
    let report = engine.run(&[1_000], &[]).expect("run");
    assert!(
        report.offloaded && !report.fell_back,
        "late crash injures nothing"
    );
    let local = Simulator::new(&a, device)
        .run_local(&[1_000], &[])
        .expect("local");
    assert_eq!(report.result.outputs, local.outputs);
}

#[test]
fn mismatched_program_falls_back() {
    let a = analysis();
    // The server loaded a *different* program (same shape, different
    // constant): the fingerprint handshake must catch it before any state
    // is exchanged, and the client heals locally.
    let other = Arc::new(
        Analysis::from_source(
            &PROGRAM.replace("% 1000", "% 999"),
            AnalysisOptions::default(),
        )
        .expect("other analysis"),
    );
    let device = DeviceModel::ipaq_testbed();
    let server = OffloadServer::bind(
        "127.0.0.1:0",
        other,
        device.clone(),
        ServerConfig::default(),
    )
    .expect("server");
    let mut config = client_config(server.addr().to_string());
    config.retry = RetryPolicy::none();
    let engine = OffloadEngine::new(&a, device.clone(), config);

    let report = engine.run(&[1_000], &[]).expect("run against wrong server");
    assert!(
        report.fell_back,
        "wrong program on the server: degrade, don't corrupt"
    );
    let local = Simulator::new(&a, device)
        .run_local(&[1_000], &[])
        .expect("local");
    assert_eq!(report.result.outputs, local.outputs);
}
