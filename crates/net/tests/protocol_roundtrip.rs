//! Property tests for the wire protocol: every message the engine can
//! send must decode back to exactly what was encoded, and corrupted or
//! truncated bytes must fail cleanly instead of panicking.
//!
//! Randomized with a local xorshift generator instead of `proptest` (the
//! offline build environment cannot fetch crates), so every run draws the
//! same deterministic case set.

use offload_core::PipelineStats;
use offload_ir::{AllocSiteId, BlockId, FuncId, LocalId};
use offload_net::protocol::{decode_frame, encode_frame, put_iv, put_uv, Cursor};
use offload_net::{NetError, WireFrame, WireMsg};
use offload_poly::Rational;
use offload_pta::AbsLocId;
use offload_runtime::{
    ControlMsg, Frame, Host, ItemPayload, Ledger, ObjEntry, ObjKey, PendingAction, RunStats, Value,
};
use offload_tcfg::SegmentId;

/// Deterministic xorshift64* generator for the property loops.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn u32(&mut self, bound: u32) -> u32 {
        (self.next() % bound as u64) as u32
    }

    fn usize(&mut self, bound: usize) -> usize {
        (self.next() % bound as u64) as usize
    }

    fn bool(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

fn arb_objkey(rng: &mut Rng) -> ObjKey {
    match rng.u32(3) {
        0 => ObjKey::Global(rng.u32(1000)),
        1 => ObjKey::Local(FuncId(rng.u32(100)), LocalId(rng.u32(100))),
        _ => ObjKey::Dyn(rng.next()),
    }
}

fn arb_value(rng: &mut Rng) -> Value {
    match rng.u32(4) {
        0 => Value::Int(rng.next() as i64),
        1 => Value::Addr(arb_objkey(rng), rng.u32(512)),
        2 => Value::Func(FuncId(rng.u32(100))),
        _ => Value::Uninit,
    }
}

fn arb_rat(rng: &mut Rng) -> Rational {
    Rational::new(rng.next() as i64 % 1_000_000, 1 + rng.u32(997) as i64)
}

fn arb_payload(rng: &mut Rng) -> ItemPayload {
    if rng.bool() {
        ItemPayload::Reg {
            func: FuncId(rng.u32(100)),
            local: LocalId(rng.u32(100)),
            value: arb_value(rng),
        }
    } else {
        let objs = (0..rng.usize(5))
            .map(|_| ObjEntry {
                key: arb_objkey(rng),
                site: rng.bool().then(|| AllocSiteId(rng.u32(50))),
                data: (0..rng.usize(8)).map(|_| arb_value(rng)).collect(),
            })
            .collect();
        ItemPayload::Objects(objs)
    }
}

fn arb_action(rng: &mut Rng) -> PendingAction {
    match rng.u32(5) {
        0 => PendingAction::Start,
        1 => PendingAction::Resume,
        2 => PendingAction::PushFrame {
            func: FuncId(rng.u32(100)),
            block: BlockId(rng.u32(100)),
            segment: SegmentId(rng.u32(100)),
            writes: (0..rng.usize(6))
                .map(|_| (LocalId(rng.u32(100)), arb_value(rng)))
                .collect(),
        },
        3 => PendingAction::WriteRet {
            dst: rng.bool().then(|| LocalId(rng.u32(100))),
            value: rng.bool().then(|| arb_value(rng)),
        },
        _ => PendingAction::Finish,
    }
}

/// A mid-run ledger in its canonical form: the derived `RunStats` time
/// and energy fields are always zero on the wire (only `Ledger::finish`
/// fills them, after the run), so only counters and accumulators vary.
fn arb_ledger(rng: &mut Rng) -> Ledger {
    Ledger {
        clock: arb_rat(rng),
        client_busy: arb_rat(rng),
        server_busy: arb_rat(rng),
        comm: arb_rat(rng),
        stats: RunStats {
            messages: rng.next() % 10_000,
            slots_transferred: rng.next() % 10_000,
            eager_transfers: rng.next() % 1_000,
            lazy_pulls: rng.next() % 1_000,
            instructions: rng.next() % 1_000_000,
            registrations: rng.next() % 1_000,
            ..RunStats::default()
        },
    }
}

fn arb_control(rng: &mut Rng) -> ControlMsg {
    ControlMsg {
        to: if rng.bool() {
            Host::Client
        } else {
            Host::Server
        },
        action: arb_action(rng),
        stack: (0..rng.usize(6))
            .map(|_| Frame {
                func: FuncId(rng.u32(100)),
                block: BlockId(rng.u32(100)),
                inst: rng.usize(64),
                segment: SegmentId(rng.u32(100)),
                ret_dst: rng.bool().then(|| LocalId(rng.u32(100))),
            })
            .collect(),
        valid: (0..rng.usize(10))
            .map(|_| (AbsLocId(rng.u32(200)), [rng.bool(), rng.bool()]))
            .collect(),
        dyn_table: (0..rng.usize(8))
            .map(|_| (arb_objkey(rng), AllocSiteId(rng.u32(50)), rng.u32(256)))
            .collect(),
        dyn_count: rng.next() % 10_000,
        steps: rng.next() % 1_000_000,
        ledger: arb_ledger(rng),
    }
}

fn arb_pipeline(rng: &mut Rng) -> PipelineStats {
    PipelineStats {
        flow_solves: rng.next() % 100_000,
        flow_phases: rng.next() % 100_000,
        flow_augmenting_paths: rng.next() % 1_000_000,
        lp_solves: rng.next() % 1_000_000,
        lp_pivots: rng.next() % 10_000_000,
        fm_vars_eliminated: rng.next() % 100_000,
        fm_constraints: rng.next() % 1_000_000,
        lp_cache_hits: rng.next() % 1_000_000,
        small_int_promotions: rng.next() % 1_000_000,
        regions_explored: rng.next() % 10_000,
        rounds: rng.next() % 1_000,
        cache_hits: rng.next() % 10_000,
        cache_misses: rng.next() % 10_000,
        threads_used: 1 + rng.u32(63),
        simplify_micros: rng.next() % 100_000_000,
        solve_micros: rng.next() % 100_000_000,
        prefilter_hits: rng.next() % 1_000_000,
        lp_warm_starts: rng.next() % 1_000_000,
        dual_pivots: rng.next() % 10_000_000,
        prune_micros: rng.next() % 100_000_000,
        region_lp_micros: rng.next() % 100_000_000,
        sequential_strategy: rng.bool(),
    }
}

fn arb_span_summary(rng: &mut Rng) -> offload_obs::SpanSummary {
    offload_obs::SpanSummary {
        entries: (0..rng.usize(6))
            .map(|_| offload_obs::SpanStat {
                cat: format!("cat{}", rng.u32(4)),
                name: format!("span{}", rng.u32(16)),
                count: rng.next() % 100_000,
                total_us: rng.next() % 100_000_000,
                max_us: rng.next() % 10_000_000,
            })
            .collect(),
    }
}

fn arb_route(rng: &mut Rng) -> offload_core::DispatchRoute {
    match rng.u32(3) {
        0 => offload_core::DispatchRoute::Dag,
        1 => offload_core::DispatchRoute::LinearScan,
        _ => offload_core::DispatchRoute::Fallback,
    }
}

fn arb_dispatch_stats(rng: &mut Rng) -> offload_net::DispatchStats {
    offload_net::DispatchStats {
        requests: rng.next() % 10_000_000,
        batches: rng.next() % 1_000_000,
        plan_cache_hits: rng.next() % 10_000_000,
        plan_cache_misses: rng.next() % 10_000,
        pointloc_nodes: rng.next() % 10_000,
        pointloc_depth: rng.next() % 100,
        latency_p50_us: rng.next() % 1_000_000,
        latency_p90_us: rng.next() % 1_000_000,
        latency_p99_us: rng.next() % 1_000_000,
    }
}

fn arb_msg(rng: &mut Rng) -> WireMsg {
    match rng.u32(13) {
        0 => WireMsg::Hello {
            fingerprint: rng.next(),
            choice: rng.u32(16),
            params: (0..rng.usize(4)).map(|_| rng.next() as i64).collect(),
            max_steps: rng.next() % 1_000_000,
        },
        1 => WireMsg::HelloAck {
            server_stats: arb_pipeline(rng),
            server_spans: arb_span_summary(rng),
        },
        2 => WireMsg::Control(Box::new(arb_control(rng))),
        3 => WireMsg::FetchItem { item: rng.u32(200) },
        4 => WireMsg::ItemData(arb_payload(rng)),
        5 => WireMsg::PushItem {
            item: rng.u32(200),
            payload: arb_payload(rng),
        },
        6 => WireMsg::PushAck,
        7 => WireMsg::Error(format!("failure #{}", rng.u32(1000))),
        8 => WireMsg::DispatchRequest {
            fingerprint: rng.next(),
            params: (0..rng.usize(6)).map(|_| rng.next() as i64).collect(),
        },
        9 => WireMsg::DispatchReply {
            choice: rng.u32(64),
            route: arb_route(rng),
        },
        10 => WireMsg::StatsRequest,
        11 => WireMsg::StatsReply(arb_dispatch_stats(rng)),
        _ => WireMsg::Bye,
    }
}

fn strip_len_prefix(encoded: &[u8]) -> &[u8] {
    // Skip the varint length prefix written by `encode_frame`.
    let mut i = 0;
    while encoded[i] & 0x80 != 0 {
        i += 1;
    }
    &encoded[i + 1..]
}

#[test]
fn varint_roundtrip() {
    let mut rng = Rng::new(0xB1A5);
    let edge = [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX];
    for i in 0..2_000 {
        let v = if i < edge.len() {
            edge[i]
        } else {
            rng.next() >> rng.u32(64)
        };
        let mut buf = Vec::new();
        put_uv(&mut buf, v);
        let mut c = Cursor::new(&buf);
        assert_eq!(c.uv().unwrap(), v);
        assert!(c.at_end());
    }
}

#[test]
fn zigzag_roundtrip() {
    let mut rng = Rng::new(0x5160);
    let edge = [0i64, 1, -1, i64::MAX, i64::MIN, 63, -64];
    for i in 0..2_000 {
        let v = if i < edge.len() {
            edge[i]
        } else {
            rng.next() as i64
        };
        let mut buf = Vec::new();
        put_iv(&mut buf, v);
        let mut c = Cursor::new(&buf);
        assert_eq!(c.iv().unwrap(), v);
        assert!(c.at_end());
    }
}

#[test]
fn frame_roundtrip() {
    let mut rng = Rng::new(0xF4A3E);
    for _ in 0..500 {
        let frame = WireFrame {
            request_id: rng.next() % 1_000_000,
            msg: arb_msg(&mut rng),
        };
        let encoded = encode_frame(&frame);
        let decoded = decode_frame(strip_len_prefix(&encoded)).unwrap();
        assert_eq!(decoded, frame);
    }
}

#[test]
fn truncated_frames_fail_cleanly() {
    let mut rng = Rng::new(0x7C0B);
    for _ in 0..100 {
        let frame = WireFrame {
            request_id: rng.next() % 1_000,
            msg: arb_msg(&mut rng),
        };
        let payload = encode_frame(&frame);
        let payload = strip_len_prefix(&payload);
        for cut in 0..payload.len() {
            // Every strict prefix must produce an error, never a panic and
            // never a successful parse of different content.
            assert!(
                decode_frame(&payload[..cut]).is_err(),
                "prefix of length {cut} decoded successfully"
            );
        }
    }
}

#[test]
fn corrupt_version_byte_is_rejected() {
    let frame = WireFrame {
        request_id: 7,
        msg: WireMsg::HelloAck {
            server_stats: PipelineStats::default(),
            server_spans: offload_obs::SpanSummary::default(),
        },
    };
    let encoded = encode_frame(&frame);
    let mut payload = strip_len_prefix(&encoded).to_vec();
    payload[0] ^= 0xFF; // version byte
    match decode_frame(&payload) {
        Err(NetError::VersionMismatch { .. }) => {}
        other => panic!("expected VersionMismatch, got {other:?}"),
    }
}

#[test]
fn trailing_garbage_is_rejected() {
    let frame = WireFrame {
        request_id: 9,
        msg: WireMsg::Bye,
    };
    let encoded = encode_frame(&frame);
    let mut payload = strip_len_prefix(&encoded).to_vec();
    payload.push(0x00);
    assert!(decode_frame(&payload).is_err());
}
