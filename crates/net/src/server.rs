//! The server daemon: loads compiled [`Analysis`]es, listens for client
//! sessions, and serves two kinds of traffic:
//!
//! * **turn sessions** (`Hello`) — the server half of a partitioned run,
//!   one thread per connection, exactly as before;
//! * **dispatch sessions** (`DispatchRequest`, v6) — stateless
//!   "which partitioning for these parameters?" queries, answered by a
//!   fixed pool of worker threads that pull *batches* of requests off a
//!   shared queue and decide them against a sharded plan cache keyed by
//!   program fingerprint, so N clients of one program share a single
//!   compiled point-location DAG.
//!
//! Backpressure is structural: each connection has at most one dispatch
//! request in flight (its session thread blocks until the answer comes
//! back), and the accept loop stops accepting at
//! [`ServerConfig::max_inflight`] live sessions.
//!
//! [`ServerHandle::shutdown`] drains deterministically: it stops the
//! accept loop, wakes every parked connection, lets the workers finish
//! the queue, joins *all* threads, and returns a [`JoinSummary`].

use crate::error::NetError;
use crate::link::{serve, Conn, Served, TcpPeer};
use crate::protocol::{fingerprint, DispatchStats, WireFrame, WireMsg};
use offload_core::{Analysis, DispatchRoute, Plan};
use offload_obs::Histogram;
use offload_pta::AbsLocId;
use offload_runtime::{DeviceModel, Host, Machine, Outcome, Runner};
use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs.
///
/// Construct via [`ServerConfig::builder`] (preferred, mirroring
/// [`offload_core::AnalysisOptions::builder`]) or field-by-field from
/// [`Default`] — both remain supported.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Per-request socket deadline; `None` blocks indefinitely (the
    /// server legitimately idles while the client computes).
    pub request_timeout: Option<Duration>,
    /// Fault injection for tests: each session's connection dies abruptly
    /// after this many frames.
    pub fail_after_frames: Option<u64>,
    /// Dispatch worker threads (the pool that answers
    /// `DispatchRequest`s). Clamped to at least 1.
    pub workers: usize,
    /// How long a worker holds an underfull batch open waiting for more
    /// requests. Zero disables the wait (every batch ships immediately).
    pub batch_window: Duration,
    /// Most requests decided per batch. Clamped to at least 1.
    pub max_batch: usize,
    /// Shards of the fingerprint-keyed plan cache. Clamped to at least 1.
    pub cache_shards: usize,
    /// Most live sessions at once; the accept loop pauses at the limit
    /// (per-connection backpressure is structural: one in-flight dispatch
    /// per connection).
    pub max_inflight: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            request_timeout: Some(Duration::from_secs(60)),
            fail_after_frames: None,
            workers: 4,
            batch_window: Duration::from_micros(200),
            max_batch: 32,
            cache_shards: 8,
            max_inflight: 4096,
        }
    }
}

impl ServerConfig {
    /// Starts a fluent [`ServerConfigBuilder`] over the defaults.
    pub fn builder() -> ServerConfigBuilder {
        ServerConfigBuilder {
            config: ServerConfig::default(),
        }
    }
}

/// Fluent constructor for [`ServerConfig`].
#[derive(Debug, Clone)]
pub struct ServerConfigBuilder {
    config: ServerConfig,
}

impl ServerConfigBuilder {
    /// Sets the per-request socket deadline (`None` = no deadline).
    pub fn request_timeout(mut self, t: Option<Duration>) -> Self {
        self.config.request_timeout = t;
        self
    }

    /// Arms fault injection: sessions die after this many frames.
    pub fn fail_after_frames(mut self, n: u64) -> Self {
        self.config.fail_after_frames = Some(n);
        self
    }

    /// Sets the dispatch worker-pool size.
    pub fn workers(mut self, n: usize) -> Self {
        self.config.workers = n;
        self
    }

    /// Sets how long an underfull batch stays open.
    pub fn batch_window(mut self, w: Duration) -> Self {
        self.config.batch_window = w;
        self
    }

    /// Sets the per-batch request cap.
    pub fn max_batch(mut self, n: usize) -> Self {
        self.config.max_batch = n;
        self
    }

    /// Sets the plan-cache shard count.
    pub fn cache_shards(mut self, n: usize) -> Self {
        self.config.cache_shards = n;
        self
    }

    /// Sets the live-session cap.
    pub fn max_inflight(mut self, n: usize) -> Self {
        self.config.max_inflight = n;
        self
    }

    /// Finishes the configuration.
    pub fn build(self) -> ServerConfig {
        self.config
    }
}

/// One queued dispatch query, answered over its private reply channel.
struct Job {
    fingerprint: u64,
    params: Vec<i64>,
    reply: mpsc::Sender<Result<(u32, DispatchRoute), String>>,
}

/// Serving-path counters, aggregated across workers.
struct Stats {
    requests: AtomicU64,
    batches: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    latency: Histogram,
    /// Shape of the primary program's point-location DAG (fixed at bind).
    pointloc_nodes: u64,
    pointloc_depth: u64,
}

/// State shared by the accept loop, session threads and workers.
struct Shared {
    programs: Vec<Arc<Analysis>>,
    device: DeviceModel,
    config: ServerConfig,
    /// Sharded plan cache: fingerprint → compiled analysis. A miss pays
    /// one [`fingerprint`] computation per registered program; every
    /// later query for the same program is a shard lookup.
    shards: Vec<Mutex<HashMap<u64, Arc<Analysis>>>>,
    queue: Mutex<VecDeque<Job>>,
    ready: Condvar,
    stats: Stats,
    stop: AtomicBool,
    inflight: AtomicUsize,
    /// Live sessions' stream clones, so shutdown can wake blocked reads.
    sessions: Mutex<HashMap<u64, TcpStream>>,
    session_handles: Mutex<Vec<JoinHandle<()>>>,
    next_session: AtomicU64,
}

impl Shared {
    /// Looks a program up by fingerprint, populating the cache shard on
    /// a miss (the miss is what pays the fingerprint computations).
    fn lookup(&self, fp: u64) -> Option<Arc<Analysis>> {
        let shard = &self.shards[(fp as usize) % self.shards.len()];
        if let Some(a) = shard.lock().unwrap().get(&fp) {
            self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
            if offload_obs::enabled() {
                offload_obs::counter("net.plan_cache.hits").inc();
            }
            return Some(a.clone());
        }
        self.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
        if offload_obs::enabled() {
            offload_obs::counter("net.plan_cache.misses").inc();
        }
        for p in &self.programs {
            if fingerprint(p) == fp {
                shard.lock().unwrap().insert(fp, p.clone());
                return Some(p.clone());
            }
        }
        None
    }

    fn dispatch_stats(&self) -> DispatchStats {
        let lat = self.stats.latency.summary();
        DispatchStats {
            requests: self.stats.requests.load(Ordering::Relaxed),
            batches: self.stats.batches.load(Ordering::Relaxed),
            plan_cache_hits: self.stats.cache_hits.load(Ordering::Relaxed),
            plan_cache_misses: self.stats.cache_misses.load(Ordering::Relaxed),
            pointloc_nodes: self.stats.pointloc_nodes,
            pointloc_depth: self.stats.pointloc_depth,
            latency_p50_us: lat.p50,
            latency_p90_us: lat.p90,
            latency_p99_us: lat.p99,
        }
    }
}

/// The offload server daemon.
pub struct OffloadServer;

impl OffloadServer {
    /// Binds a listener (use port 0 for an OS-assigned port), spawns the
    /// accept loop and the dispatch worker pool, and returns a handle for
    /// address discovery, statistics and shutdown.
    ///
    /// # Errors
    ///
    /// Bind failures.
    pub fn bind(
        addr: impl ToSocketAddrs,
        analysis: Arc<Analysis>,
        device: DeviceModel,
        config: ServerConfig,
    ) -> Result<ServerHandle, NetError> {
        Self::bind_multi(addr, vec![analysis], device, config)
    }

    /// Like [`OffloadServer::bind`], serving several programs at once:
    /// both turn sessions and dispatch queries are routed to the matching
    /// program by the fingerprint they carry. The first program is the
    /// *primary* one (its point-location DAG shape is what
    /// [`DispatchStats`] reports).
    ///
    /// # Errors
    ///
    /// Bind failures, or an empty program list.
    pub fn bind_multi(
        addr: impl ToSocketAddrs,
        programs: Vec<Arc<Analysis>>,
        device: DeviceModel,
        config: ServerConfig,
    ) -> Result<ServerHandle, NetError> {
        if programs.is_empty() {
            return Err(NetError::protocol("no programs to serve"));
        }
        let listener = TcpListener::bind(addr).map_err(|e| NetError::io("binding listener", e))?;
        let local = listener
            .local_addr()
            .map_err(|e| NetError::io("reading bound address", e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| NetError::io("setting listener nonblocking", e))?;

        let (pointloc_nodes, pointloc_depth) = programs[0]
            .partition
            .locator
            .as_ref()
            .map(|l| (l.nodes() as u64, l.depth() as u64))
            .unwrap_or((0, 0));
        let nshards = config.cache_shards.max(1);
        let nworkers = config.workers.max(1);
        let shared = Arc::new(Shared {
            programs,
            device,
            config,
            shards: (0..nshards).map(|_| Mutex::new(HashMap::new())).collect(),
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            stats: Stats {
                requests: AtomicU64::new(0),
                batches: AtomicU64::new(0),
                cache_hits: AtomicU64::new(0),
                cache_misses: AtomicU64::new(0),
                latency: Histogram::default(),
                pointloc_nodes,
                pointloc_depth,
            },
            stop: AtomicBool::new(false),
            inflight: AtomicUsize::new(0),
            sessions: Mutex::new(HashMap::new()),
            session_handles: Mutex::new(Vec::new()),
            next_session: AtomicU64::new(0),
        });

        let workers: Vec<JoinHandle<()>> = (0..nworkers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("offload-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning dispatch worker")
            })
            .collect();

        let shared_accept = shared.clone();
        let accept = std::thread::Builder::new()
            .name("offload-accept".into())
            .spawn(move || accept_loop(&listener, &shared_accept))
            .expect("spawning accept loop");

        Ok(ServerHandle {
            addr: local,
            shared,
            accept: Some(accept),
            workers,
            done: None,
        })
    }
}

/// Accepts connections until shutdown, spawning one session thread per
/// connection. Drains the backlog on every wakeup so a burst of N
/// clients does not serialize behind the poll interval.
fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    while !shared.stop.load(Ordering::SeqCst) {
        // Backpressure: over the live-session cap, stop accepting — the
        // OS backlog (and then the clients' connect timeouts) absorb the
        // excess.
        if shared.inflight.load(Ordering::SeqCst) >= shared.config.max_inflight {
            std::thread::sleep(Duration::from_millis(1));
            continue;
        }
        match listener.accept() {
            Ok((stream, _)) => spawn_session(stream, shared),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
}

fn spawn_session(stream: TcpStream, shared: &Arc<Shared>) {
    let id = shared.next_session.fetch_add(1, Ordering::SeqCst);
    if let Ok(clone) = stream.try_clone() {
        shared.sessions.lock().unwrap().insert(id, clone);
    }
    shared.inflight.fetch_add(1, Ordering::SeqCst);
    let shared2 = shared.clone();
    let handle = std::thread::Builder::new()
        .name(format!("offload-session-{id}"))
        // Sessions are mostly parked on a socket or a reply channel;
        // small stacks keep a thousand of them cheap.
        .stack_size(512 * 1024)
        .spawn(move || {
            // A failed session must not take the daemon down; the client
            // heals by falling back.
            let _ = handle_connection(stream, &shared2);
            shared2.sessions.lock().unwrap().remove(&id);
            shared2.inflight.fetch_sub(1, Ordering::SeqCst);
        });
    match handle {
        Ok(h) => shared.session_handles.lock().unwrap().push(h),
        Err(_) => {
            // Spawn failure: undo the registration.
            shared.sessions.lock().unwrap().remove(&id);
            shared.inflight.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// A running server: its address, statistics, and a draining shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    done: Option<JoinSummary>,
}

/// What [`ServerHandle::shutdown`] joined, and what the server did over
/// its lifetime.
#[derive(Debug, Clone, Default)]
pub struct JoinSummary {
    /// Session threads joined (every connection ever accepted).
    pub sessions_joined: usize,
    /// Dispatch worker threads joined.
    pub workers_joined: usize,
    /// Dispatch requests served over the server's lifetime.
    pub requests: u64,
    /// Worker batches executed over the server's lifetime.
    pub batches: u64,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serving-path statistics so far (also available over the wire via
    /// [`WireMsg::StatsRequest`]).
    pub fn stats(&self) -> DispatchStats {
        self.shared.dispatch_stats()
    }

    /// Stops accepting, wakes every parked connection, lets the worker
    /// pool finish the queued requests, joins **all** threads (accept,
    /// sessions, workers), and reports what was joined. Idempotent: a
    /// second call returns the same summary without re-joining.
    pub fn shutdown(&mut self) -> JoinSummary {
        if let Some(done) = &self.done {
            return done.clone();
        }
        self.shared.stop.store(true, Ordering::SeqCst);
        // Wake dispatch sessions parked on the queue and reads parked on
        // sockets. Queued jobs are still drained by the workers before
        // they exit, so no request is dropped unanswered.
        self.shared.ready.notify_all();
        for s in self.shared.sessions.lock().unwrap().values() {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // The accept loop is gone, so the registry is final; a session
        // accepted in the shutdown race gets its socket closed here.
        for s in self.shared.sessions.lock().unwrap().values() {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
        let handles: Vec<JoinHandle<()>> = self
            .shared
            .session_handles
            .lock()
            .unwrap()
            .drain(..)
            .collect();
        let mut summary = JoinSummary {
            sessions_joined: 0,
            workers_joined: 0,
            requests: 0,
            batches: 0,
        };
        for h in handles {
            let _ = h.join();
            summary.sessions_joined += 1;
        }
        // No session threads remain, so no new jobs: the workers drain
        // the queue and exit.
        self.shared.ready.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
            summary.workers_joined += 1;
        }
        summary.requests = self.shared.stats.requests.load(Ordering::Relaxed);
        summary.batches = self.shared.stats.batches.load(Ordering::Relaxed);
        self.done = Some(summary.clone());
        summary
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One dispatch worker: pull a batch off the queue, decide every request
/// in it, answer each session's reply channel.
fn worker_loop(shared: &Shared) {
    loop {
        let batch: Vec<Job> = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if !q.is_empty() {
                    break;
                }
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                q = shared.ready.wait(q).unwrap();
            }
            // The batching window: hold an underfull batch open briefly
            // so a burst of concurrent clients amortizes into one
            // wakeup's worth of work.
            let max_batch = shared.config.max_batch.max(1);
            if q.len() < max_batch
                && !shared.config.batch_window.is_zero()
                && !shared.stop.load(Ordering::SeqCst)
            {
                let (qq, _) = shared
                    .ready
                    .wait_timeout(q, shared.config.batch_window)
                    .unwrap();
                q = qq;
            }
            let n = q.len().min(max_batch);
            q.drain(..n).collect()
        };
        if batch.is_empty() {
            continue;
        }
        shared.stats.batches.fetch_add(1, Ordering::Relaxed);
        for job in batch {
            let t0 = Instant::now();
            let answer = match shared.lookup(job.fingerprint) {
                None => Err(format!(
                    "unknown program fingerprint {:#018x}",
                    job.fingerprint
                )),
                Some(analysis) => match analysis.decide(&job.params) {
                    Ok(d) => Ok((d.region_id as u32, d.route)),
                    Err(e) => Err(e.to_string()),
                },
            };
            let us = u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);
            shared.stats.latency.record(us);
            if offload_obs::enabled() {
                offload_obs::histogram("net.dispatch.latency_us").record(us);
            }
            shared.stats.requests.fetch_add(1, Ordering::Relaxed);
            // A vanished session (dead socket) is not an error.
            let _ = job.reply.send(answer);
        }
    }
}

/// Routes a fresh connection by its first frame: `Hello` opens a turn
/// session, `DispatchRequest`/`StatsRequest` a dispatch session.
fn handle_connection(stream: TcpStream, shared: &Shared) -> Result<(), NetError> {
    let mut conn = Conn::new(stream, shared.config.request_timeout)?;
    if let Some(n) = shared.config.fail_after_frames {
        conn.fail_after_frames(n);
    }
    let first = conn.recv()?;
    match &first.msg {
        WireMsg::Hello { .. } => turn_session(first, &mut conn, shared),
        WireMsg::DispatchRequest { .. } | WireMsg::StatsRequest => {
            dispatch_session(first, &mut conn, shared)
        }
        other => Err(NetError::protocol(format!(
            "expected Hello or DispatchRequest, got {}",
            other.kind()
        ))),
    }
}

/// The dispatch session loop: one request in flight at a time (the
/// thread blocks on its reply channel — that *is* the per-connection
/// backpressure), until `Bye` or the connection drops.
fn dispatch_session(first: WireFrame, conn: &mut Conn, shared: &Shared) -> Result<(), NetError> {
    let (tx, rx) = mpsc::channel();
    let mut next = Some(first);
    loop {
        let frame = match next.take() {
            Some(f) => f,
            None => conn.recv()?,
        };
        match frame.msg {
            WireMsg::DispatchRequest {
                fingerprint,
                params,
            } => {
                {
                    // Stop-check and push under one lock: a worker only
                    // exits with the queue observed empty under this
                    // lock, so a job pushed while `stop` still reads
                    // false here is guaranteed to be drained.
                    let mut q = shared.queue.lock().unwrap();
                    if shared.stop.load(Ordering::SeqCst) {
                        drop(q);
                        let _ = conn.reply(
                            frame.request_id,
                            WireMsg::Error("server shutting down".into()),
                        );
                        return Ok(());
                    }
                    q.push_back(Job {
                        fingerprint,
                        params,
                        reply: tx.clone(),
                    });
                }
                shared.ready.notify_one();
                match rx.recv() {
                    Ok(Ok((choice, route))) => {
                        conn.reply(frame.request_id, WireMsg::DispatchReply { choice, route })?
                    }
                    Ok(Err(msg)) => conn.reply(frame.request_id, WireMsg::Error(msg))?,
                    Err(_) => {
                        let _ = conn.reply(
                            frame.request_id,
                            WireMsg::Error("server shutting down".into()),
                        );
                        return Ok(());
                    }
                }
            }
            WireMsg::StatsRequest => conn.reply(
                frame.request_id,
                WireMsg::StatsReply(shared.dispatch_stats()),
            )?,
            WireMsg::Bye => return Ok(()),
            other => {
                return Err(NetError::protocol(format!(
                    "unexpected {} in dispatch session",
                    other.kind()
                )))
            }
        }
    }
}

/// One turn session: handshake, then alternate between serving the
/// active client and running our own turns.
fn turn_session(hello: WireFrame, conn: &mut Conn, shared: &Shared) -> Result<(), NetError> {
    let WireMsg::Hello {
        fingerprint: fp,
        choice,
        params,
        max_steps,
    } = hello.msg
    else {
        unreachable!("routed by handle_connection");
    };
    let Some(analysis) = shared.lookup(fp) else {
        let ours = fingerprint(&shared.programs[0]);
        let e = NetError::FingerprintMismatch { ours, theirs: fp };
        let _ = conn.reply(hello.request_id, WireMsg::Error(e.to_string()));
        return Err(e);
    };
    let choice = choice as usize;
    if choice >= analysis.partition.choices.len() {
        let msg = format!("choice {choice} out of range");
        let _ = conn.reply(hello.request_id, WireMsg::Error(msg.clone()));
        return Err(NetError::protocol(msg));
    }
    let mut session_span = offload_obs::span!("net", "session", choice = choice,);
    conn.reply(
        hello.request_id,
        WireMsg::HelloAck {
            server_stats: analysis.pipeline_stats(),
            server_spans: offload_obs::span_summary(),
        },
    )?;

    // The server half of the executor, configured identically to the
    // client's (same analysis, same plan, same device constants).
    let tracked: Vec<AbsLocId> = analysis.items.items.iter().map(|i| i.loc).collect();
    let runner = Runner {
        module: &analysis.module,
        tcfg: &analysis.tcfg,
        pta: &analysis.pta,
        tracked_order: &tracked,
        device: &shared.device,
        plan: Plan::Partitioned(&analysis.partition.choices[choice]),
        max_steps,
    };
    let mut machine = Machine::new(&runner, Host::Server, &params, &[]);

    let mut turns = 0u64;
    let finish = |span: &mut offload_obs::SpanGuard, conn: &Conn, turns: u64| {
        span.record("turns", turns);
        span.record("bytes_received", conn.bytes_received());
        span.record("bytes_sent", conn.bytes_sent());
    };
    loop {
        let rx_before = conn.bytes_received();
        let served = match serve(&mut machine, conn) {
            Ok(s) => s,
            Err(e) => {
                finish(&mut session_span, conn, turns);
                return Err(e);
            }
        };
        match served {
            Served::Bye => {
                finish(&mut session_span, conn, turns);
                return Ok(());
            }
            Served::Control(msg) => {
                turns += 1;
                let mut turn_span = offload_obs::span!("net", "server_turn", turn = turns,);
                let tx0 = conn.bytes_sent();
                let mut peer = TcpPeer::new(conn);
                let outcome = machine.run_turn(msg, &mut peer);
                // The request frame was already read by `serve`, so the
                // inbound window opens before it (and picks up any
                // mid-turn item fetches); the outbound window closes
                // only after the control reply below goes out.
                turn_span.record("request_bytes", conn.bytes_received() - rx_before);
                match outcome {
                    Ok(Outcome::Yield(back)) => {
                        let sent = conn.send(WireMsg::Control(Box::new(back)));
                        turn_span.record("response_bytes", conn.bytes_sent() - tx0);
                        drop(turn_span);
                        sent?;
                    }
                    // The run never terminates on the server: an empty
                    // stack yields a `Finish` control home instead.
                    Ok(Outcome::Done) => {
                        turn_span.record("response_bytes", conn.bytes_sent() - tx0);
                        drop(turn_span);
                        finish(&mut session_span, conn, turns);
                        return Ok(());
                    }
                    Err(e) => {
                        let _ = conn.send(WireMsg::Error(e.to_string()));
                        turn_span.record("response_bytes", conn.bytes_sent() - tx0);
                        drop(turn_span);
                        finish(&mut session_span, conn, turns);
                        return Err(e.into());
                    }
                }
            }
        }
    }
}
