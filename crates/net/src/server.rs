//! The server daemon: loads a compiled [`Analysis`], listens for client
//! sessions, and executes the server half of each partitioned run.

use crate::error::NetError;
use crate::link::{serve, Conn, Served, TcpPeer};
use crate::protocol::{fingerprint, WireMsg};
use offload_core::{Analysis, Plan};
use offload_pta::AbsLocId;
use offload_runtime::{DeviceModel, Host, Machine, Outcome, Runner};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Per-request socket deadline; `None` blocks indefinitely (the
    /// server legitimately idles while the client computes).
    pub request_timeout: Option<Duration>,
    /// Fault injection for tests: each session's connection dies abruptly
    /// after this many frames.
    pub fail_after_frames: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            request_timeout: Some(Duration::from_secs(60)),
            fail_after_frames: None,
        }
    }
}

/// The offload server daemon.
pub struct OffloadServer;

impl OffloadServer {
    /// Binds a listener (use port 0 for an OS-assigned port), spawns the
    /// accept loop, and returns a handle for address discovery and
    /// shutdown. Each accepted connection is served on its own thread.
    ///
    /// # Errors
    ///
    /// Bind failures.
    pub fn bind(
        addr: impl ToSocketAddrs,
        analysis: Arc<Analysis>,
        device: DeviceModel,
        config: ServerConfig,
    ) -> Result<ServerHandle, NetError> {
        let listener = TcpListener::bind(addr).map_err(|e| NetError::io("binding listener", e))?;
        let local = listener
            .local_addr()
            .map_err(|e| NetError::io("reading bound address", e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| NetError::io("setting listener nonblocking", e))?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_accept = stop.clone();
        let accept = std::thread::spawn(move || {
            while !stop_accept.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let analysis = analysis.clone();
                        let device = device.clone();
                        let config = config.clone();
                        std::thread::spawn(move || {
                            // A failed session must not take the daemon
                            // down; the client heals by falling back.
                            let _ = handle_session(stream, &analysis, &device, &config);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            }
        });
        Ok(ServerHandle {
            addr: local,
            stop,
            accept: Some(accept),
        })
    }
}

/// A running server: its address and a shutdown switch.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the accept loop. Sessions
    /// already in flight run to completion on their own threads.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One client session: handshake, then alternate between serving the
/// active client and running our own turns.
fn handle_session(
    stream: TcpStream,
    analysis: &Analysis,
    device: &DeviceModel,
    config: &ServerConfig,
) -> Result<(), NetError> {
    let mut conn = Conn::new(stream, config.request_timeout)?;
    if let Some(n) = config.fail_after_frames {
        conn.fail_after_frames(n);
    }

    // Handshake.
    let hello = conn.recv()?;
    let (choice, params, max_steps) = match hello.msg {
        WireMsg::Hello {
            fingerprint: fp,
            choice,
            params,
            max_steps,
        } => {
            let ours = fingerprint(analysis);
            if fp != ours {
                let e = NetError::FingerprintMismatch { ours, theirs: fp };
                let _ = conn.reply(hello.request_id, WireMsg::Error(e.to_string()));
                return Err(e);
            }
            if choice as usize >= analysis.partition.choices.len() {
                let msg = format!("choice {choice} out of range");
                let _ = conn.reply(hello.request_id, WireMsg::Error(msg.clone()));
                return Err(NetError::protocol(msg));
            }
            (choice as usize, params, max_steps)
        }
        other => {
            return Err(NetError::protocol(format!(
                "expected Hello, got {}",
                other.kind()
            )))
        }
    };
    let mut session_span = offload_obs::span!("net", "session", choice = choice,);
    conn.reply(
        hello.request_id,
        WireMsg::HelloAck {
            server_stats: analysis.pipeline_stats(),
            server_spans: offload_obs::span_summary(),
        },
    )?;

    // The server half of the executor, configured identically to the
    // client's (same analysis, same plan, same device constants).
    let tracked: Vec<AbsLocId> = analysis.items.items.iter().map(|i| i.loc).collect();
    let runner = Runner {
        module: &analysis.module,
        tcfg: &analysis.tcfg,
        pta: &analysis.pta,
        tracked_order: &tracked,
        device,
        plan: Plan::Partitioned(&analysis.partition.choices[choice]),
        max_steps,
    };
    let mut machine = Machine::new(&runner, Host::Server, &params, &[]);

    let mut turns = 0u64;
    let finish = |span: &mut offload_obs::SpanGuard, conn: &Conn, turns: u64| {
        span.record("turns", turns);
        span.record("bytes_received", conn.bytes_received());
        span.record("bytes_sent", conn.bytes_sent());
    };
    loop {
        let rx_before = conn.bytes_received();
        let served = match serve(&mut machine, &mut conn) {
            Ok(s) => s,
            Err(e) => {
                finish(&mut session_span, &conn, turns);
                return Err(e);
            }
        };
        match served {
            Served::Bye => {
                finish(&mut session_span, &conn, turns);
                return Ok(());
            }
            Served::Control(msg) => {
                turns += 1;
                let mut turn_span = offload_obs::span!("net", "server_turn", turn = turns,);
                let tx0 = conn.bytes_sent();
                let mut peer = TcpPeer::new(&mut conn);
                let outcome = machine.run_turn(msg, &mut peer);
                // The request frame was already read by `serve`, so the
                // inbound window opens before it (and picks up any
                // mid-turn item fetches); the outbound window closes
                // only after the control reply below goes out.
                turn_span.record("request_bytes", conn.bytes_received() - rx_before);
                match outcome {
                    Ok(Outcome::Yield(back)) => {
                        let sent = conn.send(WireMsg::Control(Box::new(back)));
                        turn_span.record("response_bytes", conn.bytes_sent() - tx0);
                        drop(turn_span);
                        sent?;
                    }
                    // The run never terminates on the server: an empty
                    // stack yields a `Finish` control home instead.
                    Ok(Outcome::Done) => {
                        turn_span.record("response_bytes", conn.bytes_sent() - tx0);
                        drop(turn_span);
                        finish(&mut session_span, &conn, turns);
                        return Ok(());
                    }
                    Err(e) => {
                        let _ = conn.send(WireMsg::Error(e.to_string()));
                        turn_span.record("response_bytes", conn.bytes_sent() - tx0);
                        drop(turn_span);
                        finish(&mut session_span, &conn, turns);
                        return Err(e.into());
                    }
                }
            }
        }
    }
}
