//! # offload-net — the offload engine over real sockets
//!
//! Everything below `crates/net` reasons about distributed execution
//! *virtually*: the [`offload_runtime::Simulator`] runs both hosts in
//! one process and charges the device model for the messages it would
//! have sent. This crate closes the loop and actually sends them. It is
//! **std-only** — hand-rolled varint framing over [`std::net::TcpStream`],
//! no external dependencies — so the whole workspace keeps building
//! offline.
//!
//! ## From simulator to sockets
//!
//! The executor core ([`offload_runtime::Machine`]) is host-agnostic:
//! one machine per host, each holding only its own memory image, talking
//! to its peer through the [`offload_runtime::ExecHost`] trait (item
//! fetches and pushes) and yielding [`offload_runtime::ControlMsg`]s at
//! control transfers. The simulator wires two machines together with
//! in-process calls; this crate wires them with:
//!
//! * [`protocol`] — the wire format: length-prefixed frames of LEB128
//!   varints carrying a version byte, request ids, and the full
//!   `ControlMsg`/`ItemPayload` vocabulary, plus an FNV-1a fingerprint
//!   so both sides can check they compiled the same program.
//! * [`OffloadServer`] — the daemon: binds a listener, and for each
//!   session builds the server half of the executor from the client's
//!   `Hello` (choice index + parameter values) and serves turns.
//! * [`OffloadEngine`] — the client: runs the paper's dispatcher on the
//!   parameter values, executes all-local choices in process, and for
//!   partitioned choices drives the turn-taking loop over TCP.
//!
//! ## Robustness
//!
//! Connections carry per-request deadlines ([`ClientConfig`]); connect
//! attempts follow a bounded, deterministic exponential backoff
//! ([`RetryPolicy`]). Any *transport* failure — connect refusal,
//! deadline expiry, the server dying mid-run — makes the engine degrade
//! gracefully: it re-executes with the all-local plan (safe, because
//! programs are deterministic and output is buffered) and records the
//! fallback in the [`RunReport`]. Program faults are never healed; they
//! propagate as [`NetError`].
//!
//! ## Loopback example
//!
//! ```
//! use offload_core::{Analysis, AnalysisOptions};
//! use offload_net::{ClientConfig, OffloadEngine, OffloadServer, ServerConfig};
//! use offload_runtime::{DeviceModel, Simulator};
//! use std::sync::Arc;
//!
//! let analysis = Arc::new(
//!     Analysis::from_source(
//!         "int work(int v) { return v * v + 3; }
//!          void main(int n) {
//!              int i;
//!              for (i = 0; i < n; i++) { output(work(i)); }
//!          }",
//!         AnalysisOptions::default(),
//!     )
//!     .unwrap(),
//! );
//! let device = DeviceModel::ipaq_testbed();
//!
//! // A real server on an OS-assigned loopback port.
//! let server = OffloadServer::bind(
//!     "127.0.0.1:0",
//!     analysis.clone(),
//!     device.clone(),
//!     ServerConfig::default(),
//! )
//! .unwrap();
//!
//! let engine = OffloadEngine::new(
//!     &analysis,
//!     device.clone(),
//!     ClientConfig::new(server.addr().to_string()),
//! );
//! let report = engine.run(&[20], &[]).unwrap();
//! assert!(!report.fell_back);
//!
//! // Identical external behaviour to the all-local original.
//! let local = Simulator::new(&analysis, device).run_local(&[20], &[]).unwrap();
//! assert_eq!(report.result.outputs, local.outputs);
//! ```

#![warn(missing_docs)]

mod client;
mod error;
mod link;
pub mod protocol;
mod server;

pub use client::{ClientConfig, DispatchClient, OffloadEngine, RetryPolicy, RunReport};
pub use error::NetError;
pub use link::{serve, Conn, Served, TcpPeer};
pub use protocol::{fingerprint, DispatchStats, WireFrame, WireMsg, PROTOCOL_VERSION};
pub use server::{JoinSummary, OffloadServer, ServerConfig, ServerConfigBuilder, ServerHandle};
