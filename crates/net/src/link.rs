//! The shared connection layer: framed streams, the request/response
//! peer link the active machine drives, and the serve loop the passive
//! machine answers with.

use crate::error::NetError;
use crate::protocol::{read_frame_counted, write_frame, WireFrame, WireMsg};
use offload_pta::AbsLocId;
use offload_runtime::{ControlMsg, ExecHost, HostError, ItemPayload, Machine};
use std::io;
use std::net::TcpStream;
use std::time::Duration;

/// A framed, request-counting TCP connection.
pub struct Conn {
    stream: TcpStream,
    next_id: u64,
    /// Fault injection: abort the connection after this many more frames
    /// (sent + received). Used by tests to kill a server mid-run.
    frame_budget: Option<u64>,
    /// On-wire bytes written (frame length prefixes included).
    bytes_sent: u64,
    /// On-wire bytes read (frame length prefixes included).
    bytes_received: u64,
}

impl Conn {
    /// Wraps a connected stream with per-request deadlines.
    ///
    /// # Errors
    ///
    /// Socket-option failures.
    pub fn new(stream: TcpStream, deadline: Option<Duration>) -> Result<Conn, NetError> {
        stream
            .set_nodelay(true)
            .map_err(|e| NetError::io("setting nodelay", e))?;
        stream
            .set_read_timeout(deadline)
            .map_err(|e| NetError::io("setting read deadline", e))?;
        stream
            .set_write_timeout(deadline)
            .map_err(|e| NetError::io("setting write deadline", e))?;
        Ok(Conn {
            stream,
            next_id: 0,
            frame_budget: None,
            bytes_sent: 0,
            bytes_received: 0,
        })
    }

    /// On-wire bytes this connection has sent so far.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// On-wire bytes this connection has received so far.
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received
    }

    /// Arms fault injection: after `n` more frames the connection
    /// pretends to die abruptly.
    pub fn fail_after_frames(&mut self, n: u64) {
        self.frame_budget = Some(n);
    }

    fn spend_frame(&mut self) -> Result<(), NetError> {
        if let Some(budget) = &mut self.frame_budget {
            if *budget == 0 {
                // Shut down the socket so the peer observes a dead
                // connection, exactly like a crashed process.
                let _ = self.stream.shutdown(std::net::Shutdown::Both);
                return Err(NetError::io(
                    "fault injection",
                    io::Error::new(io::ErrorKind::ConnectionAborted, "injected crash"),
                ));
            }
            *budget -= 1;
        }
        Ok(())
    }

    /// Sends a message under a fresh request id; returns the id.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn send(&mut self, msg: WireMsg) -> Result<u64, NetError> {
        self.spend_frame()?;
        self.next_id += 1;
        let id = self.next_id;
        self.bytes_sent += write_frame(
            &mut self.stream,
            &WireFrame {
                request_id: id,
                msg,
            },
        )?;
        Ok(id)
    }

    /// Sends a reply echoing the request id it answers.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn reply(&mut self, request_id: u64, msg: WireMsg) -> Result<(), NetError> {
        self.spend_frame()?;
        self.bytes_sent += write_frame(&mut self.stream, &WireFrame { request_id, msg })?;
        Ok(())
    }

    /// Receives the next frame.
    ///
    /// # Errors
    ///
    /// Transport failures, deadline expiry, malformed frames.
    pub fn recv(&mut self) -> Result<WireFrame, NetError> {
        self.spend_frame()?;
        let (frame, n) = read_frame_counted(&mut self.stream)?;
        self.bytes_received += n;
        Ok(frame)
    }
}

/// The active side's view of the remote host: item fetches and pushes as
/// request/response round trips on the framed connection.
pub struct TcpPeer<'c> {
    conn: &'c mut Conn,
}

impl<'c> TcpPeer<'c> {
    /// Wraps a connection for the duration of one turn.
    pub fn new(conn: &'c mut Conn) -> Self {
        TcpPeer { conn }
    }

    fn round_trip(&mut self, msg: WireMsg) -> Result<WireMsg, NetError> {
        let id = self.conn.send(msg)?;
        let frame = self.conn.recv()?;
        if frame.request_id != id {
            return Err(NetError::protocol(format!(
                "reply id {} does not match request id {id}",
                frame.request_id
            )));
        }
        Ok(frame.msg)
    }
}

impl ExecHost for TcpPeer<'_> {
    fn fetch_item(&mut self, item: AbsLocId) -> Result<ItemPayload, HostError> {
        match self.round_trip(WireMsg::FetchItem {
            item: item.index() as u32,
        }) {
            Ok(WireMsg::ItemData(payload)) => Ok(payload),
            Ok(other) => Err(HostError(format!(
                "expected ItemData, got {}",
                other.kind()
            ))),
            Err(e) => Err(HostError(e.to_string())),
        }
    }

    fn push_item(&mut self, item: AbsLocId, payload: ItemPayload) -> Result<(), HostError> {
        match self.round_trip(WireMsg::PushItem {
            item: item.index() as u32,
            payload,
        }) {
            Ok(WireMsg::PushAck) => Ok(()),
            Ok(other) => Err(HostError(format!("expected PushAck, got {}", other.kind()))),
            Err(e) => Err(HostError(e.to_string())),
        }
    }
}

/// How a passive serve loop ended.
///
/// `Control` carries the full `ControlMsg` by value, mirroring
/// `offload_runtime::Outcome`: one is produced per control transfer and
/// consumed immediately, never stored.
#[allow(clippy::large_enum_variant)]
pub enum Served {
    /// The peer handed control over.
    Control(ControlMsg),
    /// The peer closed the session (client-initiated `Bye`).
    Bye,
}

/// Runs the passive side: answer the active host's item traffic against
/// the local machine until control (or the session end) arrives.
///
/// # Errors
///
/// Transport failures, and [`NetError::Remote`] if the peer reports its
/// half of the run failed.
pub fn serve(machine: &mut Machine<'_>, conn: &mut Conn) -> Result<Served, NetError> {
    loop {
        let frame = conn.recv()?;
        match frame.msg {
            WireMsg::FetchItem { item } => {
                let payload = machine
                    .fetch_item(AbsLocId(item))
                    .map_err(|e| NetError::protocol(e.0))?;
                conn.reply(frame.request_id, WireMsg::ItemData(payload))?;
            }
            WireMsg::PushItem { item, payload } => {
                machine
                    .push_item(AbsLocId(item), payload)
                    .map_err(|e| NetError::protocol(e.0))?;
                conn.reply(frame.request_id, WireMsg::PushAck)?;
            }
            WireMsg::Control(m) => return Ok(Served::Control(*m)),
            WireMsg::Error(m) => return Err(NetError::Remote(m)),
            WireMsg::Bye => return Ok(Served::Bye),
            other => {
                return Err(NetError::protocol(format!(
                    "unexpected {} while serving",
                    other.kind()
                )))
            }
        }
    }
}
