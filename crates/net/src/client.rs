//! The client engine: the dispatcher loop over a real socket, with
//! bounded retries, per-request deadlines, and graceful degradation to
//! the all-local plan when the server is unreachable or dies mid-run.

use crate::error::NetError;
use crate::link::{serve, Conn, Served, TcpPeer};
use crate::protocol::{fingerprint, DispatchStats, WireMsg};
use offload_core::{Analysis, DispatchRoute, PipelineStats, Plan};
use offload_pta::AbsLocId;
use offload_runtime::{
    ControlMsg, DeviceModel, Host, Machine, Outcome, RunResult, Runner, RuntimeError,
};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Bounded, deterministic (jitter-free) exponential backoff, so tests
/// and reproductions observe identical retry schedules.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total connection attempts (1 = no retry).
    pub max_attempts: u32,
    /// Delay before the second attempt; doubles each further attempt.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(1),
        }
    }
}

impl RetryPolicy {
    /// A single attempt, no waiting.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// The deterministic delay before attempt `n` (1-based; attempt 1 is
    /// immediate): `min(base · 2^(n-2), max)`.
    pub fn delay_before(&self, attempt: u32) -> Duration {
        if attempt <= 1 {
            return Duration::ZERO;
        }
        let factor = 1u32 << (attempt - 2).min(20);
        (self.base_delay * factor).min(self.max_delay)
    }
}

/// Client engine configuration.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Server address, e.g. `"127.0.0.1:7070"`.
    pub server: String,
    /// Deadline for establishing the TCP connection.
    pub connect_timeout: Duration,
    /// Per-request socket deadline (also bounds how long the client
    /// waits for the server's turn to complete).
    pub request_timeout: Duration,
    /// Connection retry schedule.
    pub retry: RetryPolicy,
    /// Step budget forwarded to both halves (0 = executor default).
    pub max_steps: u64,
}

impl ClientConfig {
    /// Sensible defaults against the given server address.
    pub fn new(server: impl Into<String>) -> Self {
        ClientConfig {
            server: server.into(),
            connect_timeout: Duration::from_secs(2),
            request_timeout: Duration::from_secs(30),
            retry: RetryPolicy::default(),
            max_steps: 0,
        }
    }
}

/// What one adaptive run did, and how.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The partitioning choice the dispatcher selected.
    pub choice: usize,
    /// Which dispatch engine answered (point-location DAG, linear region
    /// scan, or cheapest-cut fallback).
    pub route: DispatchRoute,
    /// Outputs and virtual-cost statistics.
    pub result: RunResult,
    /// Whether the run actually executed over the network.
    pub offloaded: bool,
    /// Whether the engine degraded to the all-local plan.
    pub fell_back: bool,
    /// Why it degraded, when it did.
    pub fallback_reason: Option<String>,
    /// TCP connection attempts spent (0 when no connection was needed).
    pub connect_attempts: u32,
    /// Analysis-time pipeline statistics of the local (client-side)
    /// compiled analysis — identical counters to a purely local run.
    pub local_pipeline: PipelineStats,
    /// The server's analysis-time pipeline statistics, carried back on
    /// the v2 handshake; `None` when no handshake completed.
    pub server_pipeline: Option<PipelineStats>,
    /// Aggregated server-side span statistics from the handshake
    /// (empty unless the server runs with tracing enabled); `None` when
    /// no handshake completed.
    pub server_spans: Option<offload_obs::SpanSummary>,
}

/// A lightweight client for the v6 dispatch-serving path: one framed
/// connection to the server's dispatch loop, one query in flight at a
/// time (matching the server's per-connection backpressure).
///
/// Where [`OffloadEngine`] executes whole runs, `DispatchClient` asks
/// only the high-frequency question — *which partitioning for these
/// parameter values?* — and leaves execution to the caller.
pub struct DispatchClient {
    conn: Conn,
    fingerprint: u64,
}

impl DispatchClient {
    /// Connects and binds the session to `analysis`'s fingerprint.
    ///
    /// # Errors
    ///
    /// Connect and socket-option failures.
    pub fn connect(
        addr: impl ToSocketAddrs,
        analysis: &Analysis,
        timeout: Duration,
    ) -> Result<DispatchClient, NetError> {
        Self::connect_fingerprinted(addr, fingerprint(analysis), timeout)
    }

    /// Like [`DispatchClient::connect`] with a precomputed fingerprint,
    /// so N clients of one program pay for [`fingerprint`] once.
    ///
    /// # Errors
    ///
    /// Connect and socket-option failures.
    pub fn connect_fingerprinted(
        addr: impl ToSocketAddrs,
        fingerprint: u64,
        timeout: Duration,
    ) -> Result<DispatchClient, NetError> {
        let addrs: Vec<SocketAddr> = addr
            .to_socket_addrs()
            .map_err(|e| NetError::io("resolving server address", e))?
            .collect();
        let Some(first) = addrs.first() else {
            return Err(NetError::protocol("server address resolved to nothing"));
        };
        let stream = TcpStream::connect_timeout(first, timeout)
            .map_err(|e| NetError::io("connecting dispatch client", e))?;
        Ok(DispatchClient {
            conn: Conn::new(stream, Some(timeout))?,
            fingerprint,
        })
    }

    /// One dispatch query: the selected choice index and the route
    /// (DAG / linear scan / fallback) that answered it server-side.
    ///
    /// # Errors
    ///
    /// Transport failures, or [`NetError::Remote`] if the server
    /// reports one (unknown fingerprint, dispatch failure).
    pub fn dispatch(
        &mut self,
        params: &[i64],
    ) -> Result<(usize, offload_core::DispatchRoute), NetError> {
        let id = self.conn.send(WireMsg::DispatchRequest {
            fingerprint: self.fingerprint,
            params: params.to_vec(),
        })?;
        let frame = self.conn.recv()?;
        if frame.request_id != id {
            return Err(NetError::protocol(format!(
                "reply id {} does not match request id {id}",
                frame.request_id
            )));
        }
        match frame.msg {
            WireMsg::DispatchReply { choice, route } => Ok((choice as usize, route)),
            WireMsg::Error(m) => Err(NetError::Remote(m)),
            other => Err(NetError::protocol(format!(
                "expected DispatchReply, got {}",
                other.kind()
            ))),
        }
    }

    /// Fetches the server's serving-path statistics.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn stats(&mut self) -> Result<DispatchStats, NetError> {
        let id = self.conn.send(WireMsg::StatsRequest)?;
        let frame = self.conn.recv()?;
        if frame.request_id != id {
            return Err(NetError::protocol(format!(
                "reply id {} does not match request id {id}",
                frame.request_id
            )));
        }
        match frame.msg {
            WireMsg::StatsReply(s) => Ok(s),
            WireMsg::Error(m) => Err(NetError::Remote(m)),
            other => Err(NetError::protocol(format!(
                "expected StatsReply, got {}",
                other.kind()
            ))),
        }
    }

    /// Orderly session end.
    pub fn close(mut self) {
        let _ = self.conn.send(WireMsg::Bye);
    }
}

/// The adaptive offloading engine: dispatch on the parameters, execute
/// the chosen plan over TCP, fall back to all-local on transport
/// failure.
pub struct OffloadEngine<'a> {
    analysis: &'a Analysis,
    device: DeviceModel,
    config: ClientConfig,
    tracked: Vec<AbsLocId>,
}

impl<'a> OffloadEngine<'a> {
    /// Creates an engine for one compiled analysis.
    pub fn new(analysis: &'a Analysis, device: DeviceModel, config: ClientConfig) -> Self {
        let tracked = analysis.items.items.iter().map(|i| i.loc).collect();
        OffloadEngine {
            analysis,
            device,
            config,
            tracked,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ClientConfig {
        &self.config
    }

    /// Executes `main(params)` adaptively.
    ///
    /// Selects the partitioning choice for the parameter values (the
    /// Figure 2 dispatch), then:
    ///
    /// * all-local choice → run locally, no connection;
    /// * partitioned choice → run the client half here and the server
    ///   half on the remote daemon, turn by turn over the socket.
    ///
    /// Transport failures — connect refusals after the retry budget,
    /// deadline expiries, the server dying mid-run — degrade gracefully:
    /// the run restarts under the all-local plan (the program is
    /// deterministic and I/O is buffered, so re-execution is safe) and
    /// the report records `fell_back = true` with the reason. Program
    /// faults and server-reported runtime errors are *not* healed; they
    /// propagate.
    ///
    /// # Errors
    ///
    /// Dispatch failures, program faults, and non-transport protocol
    /// errors.
    pub fn run(&self, params: &[i64], input: &[i64]) -> Result<RunReport, NetError> {
        let local_pipeline = self.analysis.pipeline_stats();
        let decision = self.analysis.decide(params)?;
        let (choice, route) = (decision.region_id, decision.route);
        let Plan::Partitioned(partition) = decision.plan else {
            let result = self.run_plan(Plan::AllLocal, params, input)?;
            return Ok(RunReport {
                choice,
                route,
                result,
                offloaded: false,
                fell_back: false,
                fallback_reason: None,
                connect_attempts: 0,
                local_pipeline,
                server_pipeline: None,
                server_spans: None,
            });
        };
        match self.try_remote(choice, partition, params, input) {
            Ok((result, connect_attempts, server_pipeline, server_spans)) => Ok(RunReport {
                choice,
                route,
                result,
                offloaded: true,
                fell_back: false,
                fallback_reason: None,
                connect_attempts,
                local_pipeline,
                server_pipeline: Some(server_pipeline),
                server_spans: Some(server_spans),
            }),
            Err((e, connect_attempts)) if e.is_transport() => {
                offload_obs::event!("net", "fallback", choice = choice, cause = e.to_string(),);
                if offload_obs::enabled() {
                    offload_obs::counter("net.fallbacks").inc();
                }
                let result = self.run_plan(Plan::AllLocal, params, input)?;
                Ok(RunReport {
                    choice,
                    route,
                    result,
                    offloaded: false,
                    fell_back: true,
                    fallback_reason: Some(e.to_string()),
                    connect_attempts,
                    local_pipeline,
                    server_pipeline: None,
                    server_spans: None,
                })
            }
            Err((e, _)) => Err(e),
        }
    }

    fn runner<'b>(&'b self, plan: Plan<'b>) -> Runner<'b> {
        Runner {
            module: &self.analysis.module,
            tcfg: &self.analysis.tcfg,
            pta: &self.analysis.pta,
            tracked_order: &self.tracked,
            device: &self.device,
            plan,
            max_steps: self.config.max_steps,
        }
    }

    /// In-process execution under a plan (the fallback path, and the
    /// all-local fast path).
    fn run_plan(
        &self,
        plan: Plan<'_>,
        params: &[i64],
        input: &[i64],
    ) -> Result<RunResult, NetError> {
        Ok(self.runner(plan).run(params, input)?)
    }

    /// Connects with the bounded deterministic retry schedule.
    fn connect(&self) -> Result<(TcpStream, u32), (NetError, u32)> {
        let mut span = offload_obs::span!(
            "net",
            "connect",
            max_attempts = self.config.retry.max_attempts,
        );
        let addrs: Vec<SocketAddr> = match self.config.server.to_socket_addrs() {
            Ok(a) => a.collect(),
            Err(e) => return Err((NetError::io("resolving server address", e), 0)),
        };
        if addrs.is_empty() {
            return Err((NetError::protocol("server address resolved to nothing"), 0));
        }
        let mut last: Option<std::io::Error> = None;
        let mut attempts = 0;
        for attempt in 1..=self.config.retry.max_attempts {
            std::thread::sleep(self.config.retry.delay_before(attempt));
            attempts = attempt;
            match TcpStream::connect_timeout(&addrs[0], self.config.connect_timeout) {
                Ok(s) => {
                    span.record("attempts", attempts);
                    span.record("ok", true);
                    return Ok((s, attempts));
                }
                Err(e) => {
                    offload_obs::event!(
                        "net",
                        "connect_retry",
                        attempt = attempt,
                        cause = e.to_string(),
                    );
                    if offload_obs::enabled() {
                        offload_obs::counter("net.connect_retries").inc();
                    }
                    last = Some(e);
                }
            }
        }
        span.record("attempts", attempts);
        span.record("ok", false);
        let e = last.unwrap_or_else(|| std::io::Error::other("no attempt made"));
        Err((
            NetError::io(
                format!("connecting to {} ({attempts} attempts)", self.config.server),
                e,
            ),
            attempts,
        ))
    }

    /// The full remote run: handshake, then the turn-taking loop.
    fn try_remote(
        &self,
        choice: usize,
        partition: &offload_core::Partition,
        params: &[i64],
        input: &[i64],
    ) -> Result<(RunResult, u32, PipelineStats, offload_obs::SpanSummary), (NetError, u32)> {
        let mut span = offload_obs::span!("net", "remote_run", choice = choice,);
        let (stream, attempts) = self.connect()?;
        let fail = |e: NetError| (e, attempts);
        let mut conn = Conn::new(stream, Some(self.config.request_timeout)).map_err(fail)?;

        // Handshake: agree on program, plan and parameters.
        let id = conn
            .send(WireMsg::Hello {
                fingerprint: fingerprint(self.analysis),
                choice: choice as u32,
                params: params.to_vec(),
                max_steps: self.config.max_steps,
            })
            .map_err(fail)?;
        let ack = conn.recv().map_err(fail)?;
        let (server_stats, server_spans) = match ack.msg {
            WireMsg::HelloAck {
                server_stats,
                server_spans,
            } if ack.request_id == id => (server_stats, server_spans),
            WireMsg::Error(m) => return Err(fail(NetError::HandshakeRefused(m))),
            other => {
                return Err(fail(NetError::protocol(format!(
                    "expected HelloAck, got {}",
                    other.kind()
                ))))
            }
        };

        // The client half of the executor; the server built its twin from
        // the Hello.
        let runner = self.runner(Plan::Partitioned(partition));
        let mut machine = Machine::new(&runner, Host::Client, params, input);
        let mut msg = ControlMsg::start();
        loop {
            let mut peer = TcpPeer::new(&mut conn);
            match machine.run_turn(msg, &mut peer) {
                Ok(Outcome::Yield(out)) => {
                    conn.send(WireMsg::Control(Box::new(out))).map_err(fail)?;
                    match serve(&mut machine, &mut conn).map_err(fail)? {
                        Served::Control(back) => msg = back,
                        Served::Bye => {
                            return Err(fail(NetError::protocol(
                                "server ended the session mid-run",
                            )))
                        }
                    }
                }
                Ok(Outcome::Done) => {
                    // Orderly teardown; the result no longer depends on
                    // the socket, so send errors are ignored.
                    let _ = conn.send(WireMsg::Bye);
                    span.record("connect_attempts", attempts);
                    span.record("bytes_sent", conn.bytes_sent());
                    span.record("bytes_received", conn.bytes_received());
                    return Ok((machine.into_result(), attempts, server_stats, server_spans));
                }
                Err(e @ RuntimeError::HostLink(_)) => return Err(fail(e.into())),
                Err(e) => {
                    let _ = conn.send(WireMsg::Error(e.to_string()));
                    return Err(fail(e.into()));
                }
            }
        }
    }
}
