//! One `?`-friendly error for the whole client/server engine, with
//! manual `std::error::Error` impls that chain causes via `source()`.

use offload_core::DispatchError;
use offload_runtime::{RuntimeError, SimError};
use std::error::Error;
use std::fmt;

/// Errors from the TCP offload engine.
#[derive(Debug)]
pub enum NetError {
    /// A socket operation failed (connect, read, write, deadline expiry).
    Io {
        /// What the engine was doing.
        context: String,
        /// The underlying I/O failure.
        source: std::io::Error,
    },
    /// The peer sent bytes that do not parse as the protocol.
    Protocol(String),
    /// Client and server speak different protocol versions.
    VersionMismatch {
        /// Our version.
        ours: u8,
        /// The peer's version.
        theirs: u8,
    },
    /// Client and server loaded different compiled analyses.
    FingerprintMismatch {
        /// Our fingerprint.
        ours: u64,
        /// The peer's fingerprint.
        theirs: u64,
    },
    /// The server refused the session up front (mismatched program,
    /// unknown choice): nothing was executed remotely, so the client may
    /// heal by running locally.
    HandshakeRefused(String),
    /// The server reported a failure of its half of the run.
    Remote(String),
    /// The local half of the run failed (a program fault, not transport).
    Runtime(RuntimeError),
    /// Selecting a partitioning choice failed.
    Dispatch(DispatchError),
}

impl NetError {
    /// Wraps an I/O failure with context.
    pub fn io(context: impl Into<String>, source: std::io::Error) -> NetError {
        NetError::Io {
            context: context.into(),
            source,
        }
    }

    /// A malformed-bytes failure.
    pub fn protocol(msg: impl Into<String>) -> NetError {
        NetError::Protocol(msg.into())
    }

    /// True for failures of the *transport* (as opposed to the program or
    /// the dispatch): exactly the class the client engine may heal by
    /// re-executing with the all-local plan.
    pub fn is_transport(&self) -> bool {
        match self {
            NetError::Io { .. }
            | NetError::Protocol(_)
            | NetError::VersionMismatch { .. }
            | NetError::FingerprintMismatch { .. }
            | NetError::HandshakeRefused(_) => true,
            NetError::Runtime(RuntimeError::HostLink(_)) => true,
            NetError::Remote(_) | NetError::Runtime(_) | NetError::Dispatch(_) => false,
        }
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io { context, source } => write!(f, "i/o while {context}: {source}"),
            NetError::Protocol(m) => write!(f, "protocol violation: {m}"),
            NetError::VersionMismatch { ours, theirs } => {
                write!(f, "protocol version mismatch: ours v{ours}, peer v{theirs}")
            }
            NetError::FingerprintMismatch { ours, theirs } => write!(
                f,
                "program fingerprint mismatch: ours {ours:#018x}, peer {theirs:#018x}"
            ),
            NetError::HandshakeRefused(m) => write!(f, "server refused the session: {m}"),
            NetError::Remote(m) => write!(f, "server-side failure: {m}"),
            NetError::Runtime(e) => write!(f, "runtime failure: {e}"),
            NetError::Dispatch(e) => write!(f, "dispatch failure: {e}"),
        }
    }
}

impl Error for NetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NetError::Io { source, .. } => Some(source),
            NetError::Runtime(e) => Some(e),
            NetError::Dispatch(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RuntimeError> for NetError {
    fn from(e: RuntimeError) -> Self {
        NetError::Runtime(e)
    }
}

impl From<DispatchError> for NetError {
    fn from(e: DispatchError) -> Self {
        NetError::Dispatch(e)
    }
}

impl From<SimError> for NetError {
    fn from(e: SimError) -> Self {
        match e {
            SimError::Runtime(e) => NetError::Runtime(e),
            SimError::Dispatch(e) => NetError::Dispatch(e),
        }
    }
}
