//! The wire protocol: a hand-rolled length-prefixed binary framing.
//!
//! Every frame is
//!
//! ```text
//! varint(total payload length) ·
//!   [ version: u8 | type: u8 | varint(request id) | body ]
//! ```
//!
//! Integers use LEB128 varints (zigzag for signed values); exact
//! rationals travel in their canonical `"n"`/`"n/d"` decimal string form,
//! which [`offload_poly::Rational`]'s `Display`/`FromStr` round-trips
//! losslessly. The body encodings mirror the runtime's turn-taking state
//! machine: control transfers carry the full [`ControlMsg`] — call stack,
//! per-item validity states, the dynamic-allocation registration table
//! and the cost ledger — and item traffic carries [`ItemPayload`]s.
//!
//! Request ids increase monotonically per sender; replies echo the id of
//! the request they answer.

use crate::error::NetError;
use offload_core::{Analysis, DispatchRoute, PipelineStats};
use offload_ir::{AllocSiteId, BlockId, FuncId, LocalId};
use offload_obs::{SpanStat, SpanSummary};
use offload_poly::Rational;
use offload_pta::AbsLocId;
use offload_runtime::{
    ControlMsg, Frame, Host, ItemPayload, Ledger, ObjEntry, ObjKey, PendingAction, RunStats, Value,
};
use offload_tcfg::SegmentId;
use std::io::{Read, Write};

/// Protocol version; bumped on any incompatible framing change.
/// (v2: `HelloAck` carries the server's analysis [`PipelineStats`];
/// v3: [`PipelineStats`] gains `sequential_strategy` and `HelloAck`
/// additionally carries the server's [`SpanSummary`];
/// v4: [`PipelineStats`] gains `lp_cache_hits` and
/// `small_int_promotions`;
/// v5: [`PipelineStats`] gains the incremental-projection counters
/// `prefilter_hits`, `lp_warm_starts`, `dual_pivots` and the phase
/// timings `prune_micros`, `region_lp_micros`;
/// v6: the dispatch-serving path — `DispatchRequest`/`DispatchReply`
/// for stateless region-dispatch queries and `StatsRequest`/`StatsReply`
/// carrying the server's [`DispatchStats`] (plan-cache and
/// point-location counters, dispatch-latency percentiles).)
pub const PROTOCOL_VERSION: u8 = 6;

/// Upper bound on a single frame's payload (a corruption guard, not a
/// tight limit).
pub const MAX_FRAME_LEN: u64 = 256 * 1024 * 1024;

/// A decoded frame: `request id` plus message.
#[derive(Debug, Clone, PartialEq)]
pub struct WireFrame {
    /// Sender-assigned id; replies echo it.
    pub request_id: u64,
    /// The message.
    pub msg: WireMsg,
}

/// Every message the client and server exchange.
#[derive(Debug, Clone, PartialEq)]
pub enum WireMsg {
    /// Client → server: open a session.
    Hello {
        /// Fingerprint of the compiled analysis (program + partitioning).
        fingerprint: u64,
        /// Partitioning choice index to execute under.
        choice: u32,
        /// `main`'s parameter values.
        params: Vec<i64>,
        /// Step budget (0 = executor default).
        max_steps: u64,
    },
    /// Server → client: session accepted.
    HelloAck {
        /// Work counters of the server's parametric analysis, so a
        /// networked run reports the same numbers as a local one.
        server_stats: PipelineStats,
        /// Aggregated span statistics of the server process so far —
        /// where server time went, without shipping a full trace.
        server_spans: SpanSummary,
    },
    /// A turn-taking control transfer (either direction).
    Control(Box<ControlMsg>),
    /// Active → passive: send me your copy of this item.
    FetchItem {
        /// The tracked item.
        item: u32,
    },
    /// Passive → active: the requested item's contents.
    ItemData(ItemPayload),
    /// Active → passive: install this copy of an item.
    PushItem {
        /// The tracked item.
        item: u32,
        /// Its contents.
        payload: ItemPayload,
    },
    /// Passive → active: push applied.
    PushAck,
    /// Either direction: the sender's run failed (body is the
    /// [`offload_runtime::RuntimeError`] display text).
    Error(String),
    /// Client → server: orderly session end.
    Bye,
    /// Client → server: a stateless dispatch query — "which partitioning
    /// for these parameter values?". Answered from the server's sharded
    /// plan cache; many requests may be decided in one batch.
    DispatchRequest {
        /// Fingerprint of the compiled analysis the client holds.
        fingerprint: u64,
        /// `main`'s parameter values.
        params: Vec<i64>,
    },
    /// Server → client: the dispatch answer.
    DispatchReply {
        /// The selected partitioning choice (= region index).
        choice: u32,
        /// Which engine answered ([`offload_core::DispatchRoute`]).
        route: DispatchRoute,
    },
    /// Client → server: ask for the server's serving-path statistics.
    StatsRequest,
    /// Server → client: serving-path statistics so far.
    StatsReply(DispatchStats),
}

/// Serving-path statistics carried on [`WireMsg::StatsReply`] (v6):
/// plan-cache effectiveness, compiled point-location DAG shape, and
/// dispatch-latency percentiles as observed server-side.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DispatchStats {
    /// Dispatch requests served.
    pub requests: u64,
    /// Worker-pool batches executed (requests/batches = mean batch size).
    pub batches: u64,
    /// Plan-cache hits (a cached compiled analysis answered).
    pub plan_cache_hits: u64,
    /// Plan-cache misses (fingerprint not resident).
    pub plan_cache_misses: u64,
    /// Nodes of the point-location DAG of the server's primary program.
    pub pointloc_nodes: u64,
    /// Depth of that DAG (worst-case sign tests per query).
    pub pointloc_depth: u64,
    /// Server-side dispatch latency, 50th percentile (µs).
    pub latency_p50_us: u64,
    /// Server-side dispatch latency, 90th percentile (µs).
    pub latency_p90_us: u64,
    /// Server-side dispatch latency, 99th percentile (µs).
    pub latency_p99_us: u64,
}

impl WireMsg {
    fn tag(&self) -> u8 {
        match self {
            WireMsg::Hello { .. } => 1,
            WireMsg::HelloAck { .. } => 2,
            WireMsg::Control(_) => 3,
            WireMsg::FetchItem { .. } => 4,
            WireMsg::ItemData(_) => 5,
            WireMsg::PushItem { .. } => 6,
            WireMsg::PushAck => 7,
            WireMsg::Error(_) => 8,
            WireMsg::Bye => 9,
            WireMsg::DispatchRequest { .. } => 10,
            WireMsg::DispatchReply { .. } => 11,
            WireMsg::StatsRequest => 12,
            WireMsg::StatsReply(_) => 13,
        }
    }

    /// Short name for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            WireMsg::Hello { .. } => "Hello",
            WireMsg::HelloAck { .. } => "HelloAck",
            WireMsg::Control(_) => "Control",
            WireMsg::FetchItem { .. } => "FetchItem",
            WireMsg::ItemData(_) => "ItemData",
            WireMsg::PushItem { .. } => "PushItem",
            WireMsg::PushAck => "PushAck",
            WireMsg::Error(_) => "Error",
            WireMsg::Bye => "Bye",
            WireMsg::DispatchRequest { .. } => "DispatchRequest",
            WireMsg::DispatchReply { .. } => "DispatchReply",
            WireMsg::StatsRequest => "StatsRequest",
            WireMsg::StatsReply(_) => "StatsReply",
        }
    }
}

// ---- primitive encoders ----

/// Appends a LEB128 varint.
pub fn put_uv(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Appends a zigzag-encoded signed varint.
pub fn put_iv(buf: &mut Vec<u8>, v: i64) {
    put_uv(buf, ((v << 1) ^ (v >> 63)) as u64);
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_uv(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

fn put_rat(buf: &mut Vec<u8>, r: &Rational) {
    put_str(buf, &r.to_string());
}

fn put_objkey(buf: &mut Vec<u8>, k: ObjKey) {
    match k {
        ObjKey::Global(g) => {
            buf.push(0);
            put_uv(buf, g as u64);
        }
        ObjKey::Local(f, l) => {
            buf.push(1);
            put_uv(buf, f.0 as u64);
            put_uv(buf, l.0 as u64);
        }
        ObjKey::Dyn(d) => {
            buf.push(2);
            put_uv(buf, d);
        }
    }
}

fn put_value(buf: &mut Vec<u8>, v: Value) {
    match v {
        Value::Int(i) => {
            buf.push(0);
            put_iv(buf, i);
        }
        Value::Addr(k, off) => {
            buf.push(1);
            put_objkey(buf, k);
            put_uv(buf, off as u64);
        }
        Value::Func(f) => {
            buf.push(2);
            put_uv(buf, f.0 as u64);
        }
        Value::Uninit => buf.push(3),
    }
}

fn put_opt_local(buf: &mut Vec<u8>, l: Option<LocalId>) {
    match l {
        None => buf.push(0),
        Some(l) => {
            buf.push(1);
            put_uv(buf, l.0 as u64);
        }
    }
}

fn put_frame(buf: &mut Vec<u8>, f: &Frame) {
    put_uv(buf, f.func.0 as u64);
    put_uv(buf, f.block.0 as u64);
    put_uv(buf, f.inst as u64);
    put_uv(buf, f.segment.0 as u64);
    put_opt_local(buf, f.ret_dst);
}

fn put_payload(buf: &mut Vec<u8>, p: &ItemPayload) {
    match p {
        ItemPayload::Reg { func, local, value } => {
            buf.push(0);
            put_uv(buf, func.0 as u64);
            put_uv(buf, local.0 as u64);
            put_value(buf, *value);
        }
        ItemPayload::Objects(objs) => {
            buf.push(1);
            put_uv(buf, objs.len() as u64);
            for o in objs {
                put_objkey(buf, o.key);
                match o.site {
                    None => buf.push(0),
                    Some(s) => {
                        buf.push(1);
                        put_uv(buf, s.0 as u64);
                    }
                }
                put_uv(buf, o.data.len() as u64);
                for v in &o.data {
                    put_value(buf, *v);
                }
            }
        }
    }
}

fn put_pipeline(buf: &mut Vec<u8>, s: &PipelineStats) {
    put_uv(buf, s.flow_solves);
    put_uv(buf, s.flow_phases);
    put_uv(buf, s.flow_augmenting_paths);
    put_uv(buf, s.lp_solves);
    put_uv(buf, s.lp_pivots);
    put_uv(buf, s.fm_vars_eliminated);
    put_uv(buf, s.fm_constraints);
    put_uv(buf, s.lp_cache_hits);
    put_uv(buf, s.small_int_promotions);
    put_uv(buf, s.regions_explored);
    put_uv(buf, s.rounds);
    put_uv(buf, s.cache_hits);
    put_uv(buf, s.cache_misses);
    put_uv(buf, s.threads_used as u64);
    put_uv(buf, s.simplify_micros);
    put_uv(buf, s.solve_micros);
    put_uv(buf, s.prefilter_hits);
    put_uv(buf, s.lp_warm_starts);
    put_uv(buf, s.dual_pivots);
    put_uv(buf, s.prune_micros);
    put_uv(buf, s.region_lp_micros);
    buf.push(s.sequential_strategy as u8);
}

fn put_route(buf: &mut Vec<u8>, r: DispatchRoute) {
    buf.push(match r {
        DispatchRoute::Dag => 0,
        DispatchRoute::LinearScan => 1,
        DispatchRoute::Fallback => 2,
    });
}

fn put_dispatch_stats(buf: &mut Vec<u8>, s: &DispatchStats) {
    put_uv(buf, s.requests);
    put_uv(buf, s.batches);
    put_uv(buf, s.plan_cache_hits);
    put_uv(buf, s.plan_cache_misses);
    put_uv(buf, s.pointloc_nodes);
    put_uv(buf, s.pointloc_depth);
    put_uv(buf, s.latency_p50_us);
    put_uv(buf, s.latency_p90_us);
    put_uv(buf, s.latency_p99_us);
}

fn put_span_summary(buf: &mut Vec<u8>, s: &SpanSummary) {
    put_uv(buf, s.entries.len() as u64);
    for e in &s.entries {
        put_str(buf, &e.cat);
        put_str(buf, &e.name);
        put_uv(buf, e.count);
        put_uv(buf, e.total_us);
        put_uv(buf, e.max_us);
    }
}

fn put_stats(buf: &mut Vec<u8>, s: &RunStats) {
    put_rat(buf, &s.total_time);
    put_rat(buf, &s.client_compute);
    put_rat(buf, &s.server_compute);
    put_rat(buf, &s.comm_time);
    put_rat(buf, &s.energy);
    put_uv(buf, s.messages);
    put_uv(buf, s.slots_transferred);
    put_uv(buf, s.eager_transfers);
    put_uv(buf, s.lazy_pulls);
    put_uv(buf, s.instructions);
    put_uv(buf, s.registrations);
}

fn put_ledger(buf: &mut Vec<u8>, l: &Ledger) {
    put_rat(buf, &l.clock);
    put_rat(buf, &l.client_busy);
    put_rat(buf, &l.server_busy);
    put_rat(buf, &l.comm);
    put_stats(buf, &l.stats);
}

fn put_action(buf: &mut Vec<u8>, a: &PendingAction) {
    match a {
        PendingAction::Start => buf.push(0),
        PendingAction::Resume => buf.push(1),
        PendingAction::PushFrame {
            func,
            block,
            segment,
            writes,
        } => {
            buf.push(2);
            put_uv(buf, func.0 as u64);
            put_uv(buf, block.0 as u64);
            put_uv(buf, segment.0 as u64);
            put_uv(buf, writes.len() as u64);
            for (l, v) in writes {
                put_uv(buf, l.0 as u64);
                put_value(buf, *v);
            }
        }
        PendingAction::WriteRet { dst, value } => {
            buf.push(3);
            put_opt_local(buf, *dst);
            match value {
                None => buf.push(0),
                Some(v) => {
                    buf.push(1);
                    put_value(buf, *v);
                }
            }
        }
        PendingAction::Finish => buf.push(4),
    }
}

fn put_control(buf: &mut Vec<u8>, m: &ControlMsg) {
    buf.push(match m.to {
        Host::Client => 0,
        Host::Server => 1,
    });
    put_action(buf, &m.action);
    put_uv(buf, m.stack.len() as u64);
    for f in &m.stack {
        put_frame(buf, f);
    }
    put_uv(buf, m.valid.len() as u64);
    for (item, v) in &m.valid {
        put_uv(buf, item.index() as u64);
        buf.push(v[0] as u8 | ((v[1] as u8) << 1));
    }
    put_uv(buf, m.dyn_table.len() as u64);
    for (key, site, slots) in &m.dyn_table {
        put_objkey(buf, *key);
        put_uv(buf, site.0 as u64);
        put_uv(buf, *slots as u64);
    }
    put_uv(buf, m.dyn_count);
    put_uv(buf, m.steps);
    put_ledger(buf, &m.ledger);
}

// ---- primitive decoders ----

/// A bounds-checked reader over a received payload.
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Wraps a payload.
    pub fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    /// True if every byte was consumed.
    pub fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn byte(&mut self) -> Result<u8, NetError> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| NetError::protocol("truncated frame"))?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads a LEB128 varint.
    pub fn uv(&mut self) -> Result<u64, NetError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.byte()?;
            if shift >= 64 {
                return Err(NetError::protocol("varint overflow"));
            }
            v |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Reads a zigzag-encoded signed varint.
    pub fn iv(&mut self) -> Result<i64, NetError> {
        let z = self.uv()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    fn str(&mut self) -> Result<String, NetError> {
        let n = self.uv()? as usize;
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| NetError::protocol("truncated string"))?;
        let s = std::str::from_utf8(&self.buf[self.pos..end])
            .map_err(|_| NetError::protocol("non-UTF-8 string"))?
            .to_string();
        self.pos = end;
        Ok(s)
    }

    fn rat(&mut self) -> Result<Rational, NetError> {
        let s = self.str()?;
        s.parse()
            .map_err(|_| NetError::protocol("malformed rational"))
    }

    fn u32v(&mut self) -> Result<u32, NetError> {
        u32::try_from(self.uv()?).map_err(|_| NetError::protocol("id out of range"))
    }

    fn objkey(&mut self) -> Result<ObjKey, NetError> {
        match self.byte()? {
            0 => Ok(ObjKey::Global(self.u32v()?)),
            1 => Ok(ObjKey::Local(FuncId(self.u32v()?), LocalId(self.u32v()?))),
            2 => Ok(ObjKey::Dyn(self.uv()?)),
            t => Err(NetError::protocol(format!("bad object-key tag {t}"))),
        }
    }

    fn value(&mut self) -> Result<Value, NetError> {
        match self.byte()? {
            0 => Ok(Value::Int(self.iv()?)),
            1 => {
                let k = self.objkey()?;
                Ok(Value::Addr(k, self.u32v()?))
            }
            2 => Ok(Value::Func(FuncId(self.u32v()?))),
            3 => Ok(Value::Uninit),
            t => Err(NetError::protocol(format!("bad value tag {t}"))),
        }
    }

    fn opt_local(&mut self) -> Result<Option<LocalId>, NetError> {
        match self.byte()? {
            0 => Ok(None),
            1 => Ok(Some(LocalId(self.u32v()?))),
            t => Err(NetError::protocol(format!("bad option tag {t}"))),
        }
    }

    fn frame(&mut self) -> Result<Frame, NetError> {
        Ok(Frame {
            func: FuncId(self.u32v()?),
            block: BlockId(self.u32v()?),
            inst: self.uv()? as usize,
            segment: SegmentId(self.u32v()?),
            ret_dst: self.opt_local()?,
        })
    }

    fn payload(&mut self) -> Result<ItemPayload, NetError> {
        match self.byte()? {
            0 => Ok(ItemPayload::Reg {
                func: FuncId(self.u32v()?),
                local: LocalId(self.u32v()?),
                value: self.value()?,
            }),
            1 => {
                let n = self.uv()? as usize;
                let mut objs = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    let key = self.objkey()?;
                    let site = match self.byte()? {
                        0 => None,
                        1 => Some(AllocSiteId(self.u32v()?)),
                        t => return Err(NetError::protocol(format!("bad site tag {t}"))),
                    };
                    let len = self.uv()? as usize;
                    let mut data = Vec::with_capacity(len.min(65536));
                    for _ in 0..len {
                        data.push(self.value()?);
                    }
                    objs.push(ObjEntry { key, site, data });
                }
                Ok(ItemPayload::Objects(objs))
            }
            t => Err(NetError::protocol(format!("bad payload tag {t}"))),
        }
    }

    fn pipeline(&mut self) -> Result<PipelineStats, NetError> {
        Ok(PipelineStats {
            flow_solves: self.uv()?,
            flow_phases: self.uv()?,
            flow_augmenting_paths: self.uv()?,
            lp_solves: self.uv()?,
            lp_pivots: self.uv()?,
            fm_vars_eliminated: self.uv()?,
            fm_constraints: self.uv()?,
            lp_cache_hits: self.uv()?,
            small_int_promotions: self.uv()?,
            regions_explored: self.uv()?,
            rounds: self.uv()?,
            cache_hits: self.uv()?,
            cache_misses: self.uv()?,
            threads_used: self.u32v()?,
            simplify_micros: self.uv()?,
            solve_micros: self.uv()?,
            prefilter_hits: self.uv()?,
            lp_warm_starts: self.uv()?,
            dual_pivots: self.uv()?,
            prune_micros: self.uv()?,
            region_lp_micros: self.uv()?,
            sequential_strategy: match self.byte()? {
                0 => false,
                1 => true,
                t => return Err(NetError::protocol(format!("bad strategy flag {t}"))),
            },
        })
    }

    fn route(&mut self) -> Result<DispatchRoute, NetError> {
        match self.byte()? {
            0 => Ok(DispatchRoute::Dag),
            1 => Ok(DispatchRoute::LinearScan),
            2 => Ok(DispatchRoute::Fallback),
            t => Err(NetError::protocol(format!("bad route tag {t}"))),
        }
    }

    fn dispatch_stats(&mut self) -> Result<DispatchStats, NetError> {
        Ok(DispatchStats {
            requests: self.uv()?,
            batches: self.uv()?,
            plan_cache_hits: self.uv()?,
            plan_cache_misses: self.uv()?,
            pointloc_nodes: self.uv()?,
            pointloc_depth: self.uv()?,
            latency_p50_us: self.uv()?,
            latency_p90_us: self.uv()?,
            latency_p99_us: self.uv()?,
        })
    }

    fn span_summary(&mut self) -> Result<SpanSummary, NetError> {
        let n = self.uv()? as usize;
        let mut entries = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            entries.push(SpanStat {
                cat: self.str()?,
                name: self.str()?,
                count: self.uv()?,
                total_us: self.uv()?,
                max_us: self.uv()?,
            });
        }
        Ok(SpanSummary { entries })
    }

    fn stats(&mut self) -> Result<RunStats, NetError> {
        Ok(RunStats {
            total_time: self.rat()?,
            client_compute: self.rat()?,
            server_compute: self.rat()?,
            comm_time: self.rat()?,
            energy: self.rat()?,
            messages: self.uv()?,
            slots_transferred: self.uv()?,
            eager_transfers: self.uv()?,
            lazy_pulls: self.uv()?,
            instructions: self.uv()?,
            registrations: self.uv()?,
        })
    }

    fn ledger(&mut self) -> Result<Ledger, NetError> {
        let clock = self.rat()?;
        let client_busy = self.rat()?;
        let server_busy = self.rat()?;
        let comm = self.rat()?;
        let mut stats = self.stats()?;
        // Time/energy fields are recomputed by `Ledger::finish`; keep the
        // counters and zero the derived values for a canonical ledger.
        stats.total_time = Rational::zero();
        stats.client_compute = Rational::zero();
        stats.server_compute = Rational::zero();
        stats.comm_time = Rational::zero();
        stats.energy = Rational::zero();
        Ok(Ledger {
            clock,
            client_busy,
            server_busy,
            comm,
            stats,
        })
    }

    fn action(&mut self) -> Result<PendingAction, NetError> {
        match self.byte()? {
            0 => Ok(PendingAction::Start),
            1 => Ok(PendingAction::Resume),
            2 => {
                let func = FuncId(self.u32v()?);
                let block = BlockId(self.u32v()?);
                let segment = SegmentId(self.u32v()?);
                let n = self.uv()? as usize;
                let mut writes = Vec::with_capacity(n.min(256));
                for _ in 0..n {
                    writes.push((LocalId(self.u32v()?), self.value()?));
                }
                Ok(PendingAction::PushFrame {
                    func,
                    block,
                    segment,
                    writes,
                })
            }
            3 => {
                let dst = self.opt_local()?;
                let value = match self.byte()? {
                    0 => None,
                    1 => Some(self.value()?),
                    t => return Err(NetError::protocol(format!("bad option tag {t}"))),
                };
                Ok(PendingAction::WriteRet { dst, value })
            }
            4 => Ok(PendingAction::Finish),
            t => Err(NetError::protocol(format!("bad action tag {t}"))),
        }
    }

    fn control(&mut self) -> Result<ControlMsg, NetError> {
        let to = match self.byte()? {
            0 => Host::Client,
            1 => Host::Server,
            t => return Err(NetError::protocol(format!("bad host tag {t}"))),
        };
        let action = self.action()?;
        let n = self.uv()? as usize;
        let mut stack = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            stack.push(self.frame()?);
        }
        let n = self.uv()? as usize;
        let mut valid = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            let item = AbsLocId(self.u32v()?);
            let bits = self.byte()?;
            valid.push((item, [bits & 1 != 0, bits & 2 != 0]));
        }
        let n = self.uv()? as usize;
        let mut dyn_table = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            dyn_table.push((self.objkey()?, AllocSiteId(self.u32v()?), self.u32v()?));
        }
        let dyn_count = self.uv()?;
        let steps = self.uv()?;
        let ledger = self.ledger()?;
        Ok(ControlMsg {
            to,
            action,
            stack,
            valid,
            dyn_table,
            dyn_count,
            steps,
            ledger,
        })
    }
}

// ---- frame encode/decode ----

/// Serializes a frame (version byte, type byte, request id, body) into a
/// length-prefixed byte vector ready to write to a stream.
pub fn encode_frame(frame: &WireFrame) -> Vec<u8> {
    let mut body = Vec::with_capacity(64);
    body.push(PROTOCOL_VERSION);
    body.push(frame.msg.tag());
    put_uv(&mut body, frame.request_id);
    match &frame.msg {
        WireMsg::Hello {
            fingerprint,
            choice,
            params,
            max_steps,
        } => {
            put_uv(&mut body, *fingerprint);
            put_uv(&mut body, *choice as u64);
            put_uv(&mut body, params.len() as u64);
            for p in params {
                put_iv(&mut body, *p);
            }
            put_uv(&mut body, *max_steps);
        }
        WireMsg::HelloAck {
            server_stats,
            server_spans,
        } => {
            put_pipeline(&mut body, server_stats);
            put_span_summary(&mut body, server_spans);
        }
        WireMsg::PushAck | WireMsg::Bye => {}
        WireMsg::Control(m) => put_control(&mut body, m),
        WireMsg::FetchItem { item } => put_uv(&mut body, *item as u64),
        WireMsg::ItemData(p) => put_payload(&mut body, p),
        WireMsg::PushItem { item, payload } => {
            put_uv(&mut body, *item as u64);
            put_payload(&mut body, payload);
        }
        WireMsg::Error(s) => put_str(&mut body, s),
        WireMsg::DispatchRequest {
            fingerprint,
            params,
        } => {
            put_uv(&mut body, *fingerprint);
            put_uv(&mut body, params.len() as u64);
            for p in params {
                put_iv(&mut body, *p);
            }
        }
        WireMsg::DispatchReply { choice, route } => {
            put_uv(&mut body, *choice as u64);
            put_route(&mut body, *route);
        }
        WireMsg::StatsRequest => {}
        WireMsg::StatsReply(s) => put_dispatch_stats(&mut body, s),
    }
    let mut out = Vec::with_capacity(body.len() + 4);
    put_uv(&mut out, body.len() as u64);
    out.extend_from_slice(&body);
    out
}

/// Decodes one frame payload (everything after the length prefix).
pub fn decode_frame(payload: &[u8]) -> Result<WireFrame, NetError> {
    let mut c = Cursor::new(payload);
    let version = c.byte()?;
    if version != PROTOCOL_VERSION {
        return Err(NetError::VersionMismatch {
            ours: PROTOCOL_VERSION,
            theirs: version,
        });
    }
    let tag = c.byte()?;
    let request_id = c.uv()?;
    let msg = match tag {
        1 => {
            let fingerprint = c.uv()?;
            let choice = c.u32v()?;
            let n = c.uv()? as usize;
            let mut params = Vec::with_capacity(n.min(256));
            for _ in 0..n {
                params.push(c.iv()?);
            }
            let max_steps = c.uv()?;
            WireMsg::Hello {
                fingerprint,
                choice,
                params,
                max_steps,
            }
        }
        2 => WireMsg::HelloAck {
            server_stats: c.pipeline()?,
            server_spans: c.span_summary()?,
        },
        3 => WireMsg::Control(Box::new(c.control()?)),
        4 => WireMsg::FetchItem { item: c.u32v()? },
        5 => WireMsg::ItemData(c.payload()?),
        6 => {
            let item = c.u32v()?;
            let payload = c.payload()?;
            WireMsg::PushItem { item, payload }
        }
        7 => WireMsg::PushAck,
        8 => WireMsg::Error(c.str()?),
        9 => WireMsg::Bye,
        10 => {
            let fingerprint = c.uv()?;
            let n = c.uv()? as usize;
            let mut params = Vec::with_capacity(n.min(256));
            for _ in 0..n {
                params.push(c.iv()?);
            }
            WireMsg::DispatchRequest {
                fingerprint,
                params,
            }
        }
        11 => WireMsg::DispatchReply {
            choice: c.u32v()?,
            route: c.route()?,
        },
        12 => WireMsg::StatsRequest,
        13 => WireMsg::StatsReply(c.dispatch_stats()?),
        t => return Err(NetError::protocol(format!("unknown frame type {t}"))),
    };
    if !c.at_end() {
        return Err(NetError::protocol("trailing bytes in frame"));
    }
    Ok(WireFrame { request_id, msg })
}

/// Writes one frame to a stream.
///
/// # Errors
///
/// I/O failures (including write-deadline expiry).
pub fn write_frame(w: &mut impl Write, frame: &WireFrame) -> Result<u64, NetError> {
    let bytes = encode_frame(frame);
    w.write_all(&bytes)
        .and_then(|()| w.flush())
        .map_err(|e| NetError::io(format!("sending {}", frame.msg.kind()), e))?;
    Ok(bytes.len() as u64)
}

/// Reads one frame from a stream.
///
/// # Errors
///
/// I/O failures (including read-deadline expiry), oversized frames and
/// malformed payloads.
pub fn read_frame(r: &mut impl Read) -> Result<WireFrame, NetError> {
    read_frame_counted(r).map(|(frame, _)| frame)
}

/// Like [`read_frame`], additionally returning the on-wire size of the
/// frame (length prefix plus payload) for transfer accounting.
///
/// # Errors
///
/// See [`read_frame`].
pub fn read_frame_counted(r: &mut impl Read) -> Result<(WireFrame, u64), NetError> {
    let mut prefix = 0u64;
    let mut len = 0u64;
    let mut shift = 0u32;
    loop {
        let mut b = [0u8; 1];
        r.read_exact(&mut b)
            .map_err(|e| NetError::io("reading frame length", e))?;
        prefix += 1;
        if shift >= 64 {
            return Err(NetError::protocol("frame length varint overflow"));
        }
        len |= ((b[0] & 0x7f) as u64) << shift;
        if b[0] & 0x80 == 0 {
            break;
        }
        shift += 7;
    }
    if len > MAX_FRAME_LEN {
        return Err(NetError::protocol(format!(
            "frame of {len} bytes exceeds limit"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)
        .map_err(|e| NetError::io("reading frame payload", e))?;
    decode_frame(&payload).map(|frame| (frame, prefix + len))
}

/// A stable fingerprint of a compiled analysis (FNV-1a over the program
/// and partitioning structure), so client and server verify they loaded
/// the same build before exchanging state.
pub fn fingerprint(analysis: &Analysis) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(&(analysis.module.functions.len() as u64).to_le_bytes());
    for f in &analysis.module.functions {
        eat(f.name.as_bytes());
        eat(&(f.blocks.len() as u64).to_le_bytes());
        eat(&(f.locals.len() as u64).to_le_bytes());
        // Hash instruction *content*, not just counts: two programs that
        // differ in a single constant must not collide. The IR's `Debug`
        // rendering is deterministic and identical on both ends when the
        // loaded programs are.
        for b in &f.blocks {
            for inst in &b.insts {
                eat(format!("{inst:?}").as_bytes());
            }
            eat(format!("{:?}", b.term).as_bytes());
        }
    }
    eat(&(analysis.module.globals.len() as u64).to_le_bytes());
    eat(&(analysis.tcfg.segments().len() as u64).to_le_bytes());
    eat(&(analysis.tcfg.edges().len() as u64).to_le_bytes());
    eat(&(analysis.items.items.len() as u64).to_le_bytes());
    eat(&(analysis.partition.choices.len() as u64).to_le_bytes());
    for choice in &analysis.partition.choices {
        for &s in &choice.server_tasks {
            eat(&[s as u8]);
        }
        eat(&(choice.transfers.iter().map(Vec::len).sum::<usize>() as u64).to_le_bytes());
    }
    h
}
