//! Remote offload: the quickstart program, but executed over a real TCP
//! connection instead of the in-process simulator.
//!
//! A server daemon loads the compiled analysis and waits on a loopback
//! port; the client engine dispatches on the parameter value and — for
//! settings where offloading wins — ships the server-side tasks' work
//! over the socket, turn by turn. If the server disappears, the engine
//! falls back to all-local execution and says so.
//!
//! ```text
//! cargo run -p offload-bench --example remote_offload
//! ```

use offload_core::{Analysis, AnalysisOptions};
use offload_net::{ClientConfig, OffloadEngine, OffloadServer, ServerConfig};
use offload_runtime::DeviceModel;
use std::sync::Arc;

const PROGRAM: &str = "
    int work(int k) {
        int j;
        int acc;
        acc = 0;
        for (j = 0; j < k; j++) {
            acc = acc + j * j % 1000;
        }
        return acc;
    }

    void main(int n) {
        output(work(n));
    }";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let analysis = Arc::new(Analysis::from_source(PROGRAM, AnalysisOptions::default())?);
    let device = DeviceModel::ipaq_testbed();

    // In a real deployment the server runs on the wall-powered host; here
    // it shares the process for a self-contained example.
    let server = OffloadServer::bind(
        "127.0.0.1:0",
        analysis.clone(),
        device.clone(),
        ServerConfig::default(),
    )?;

    let engine = OffloadEngine::new(
        &analysis,
        device,
        ClientConfig::new(server.addr().to_string()),
    );
    for n in [4i64, 1_000] {
        let report = engine.run(&[n], &[])?;
        println!(
            "n={n:>9}: choice {} ran {} — output {:?}",
            report.choice,
            if report.offloaded {
                "over TCP"
            } else {
                "locally"
            },
            report.result.outputs,
        );
    }
    Ok(())
}
