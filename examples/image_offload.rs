//! Offloading an image-processing workload (the MiBench `susan`
//! benchmark): the photo dimensions decide whether edge recognition runs
//! on the handheld or the server.
//!
//! ```text
//! cargo run --release -p offload-bench --example image_offload
//! ```

use offload_benchmarks::susan;
use offload_runtime::{DeviceModel, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = susan();
    println!(
        "analyzing `{}` ({} source lines)...",
        bench.name,
        bench.source_lines()
    );
    let analysis = bench.analyze()?;
    println!(
        "{} tasks, {} tracked items, {} partitioning choices (analysis took {:?})",
        analysis.tcfg.tasks().len(),
        analysis.items.items.len(),
        analysis.partition.choices.len(),
        analysis.analysis_time,
    );

    let sim = Simulator::new(&analysis, DeviceModel::ipaq_testbed());
    // Edge recognition on photos of increasing size.
    println!(
        "{:>10} {:>10} {:>12} {:>12}",
        "photo", "choice", "adaptive", "local"
    );
    for dim in [8i64, 16, 32, 64] {
        // mode_s, mode_e, mode_c, xdim, ydim, bt, dt, mask, iters,
        // corner_t, stride, gain
        let params = [0i64, 1, 0, dim, dim, 20, 2, 1, 1, 1200, 16, 10];
        let input = (bench.make_input)(&params);
        let (choice, run) = sim.run_dispatched(&params, &input)?;
        let local = sim.run_local(&params, &input)?;
        assert_eq!(run.outputs, local.outputs);
        println!(
            "{:>7}x{dim:<3} {:>10} {:>12.0} {:>12.0}",
            dim,
            if analysis.partition.choices[choice].is_all_local() {
                "local"
            } else {
                "offload"
            },
            run.stats.total_time.to_f64(),
            local.stats.total_time.to_f64(),
        );
    }
    Ok(())
}
