//! Shows how device characteristics change partitioning decisions: the
//! same program is analyzed against a fast-link testbed and a slow-link
//! one, flipping the crossover point — and how §3.2-style calibration is
//! used to obtain the cost constants from a device model.
//!
//! ```text
//! cargo run -p offload-bench --example custom_device
//! ```

use offload_core::{Analysis, AnalysisOptions, CostModel};
use offload_poly::Rational;
use offload_runtime::DeviceModel;

const PROGRAM: &str = "
    int transform(int k) {
        int j;
        int acc;
        acc = k;
        for (j = 0; j < k; j++) {
            acc = acc + acc % 13 + 3;
        }
        return acc;
    }
    void main(int n) {
        int i;
        int v;
        for (i = 0; i < n; i++) {
            v = input();
            output(transform(n) + v % 64);
        }
    }";

fn crossover(analysis: &Analysis) -> Option<i64> {
    // First n at which the dispatcher leaves everything local no longer.
    (1..=22).map(|p| 1i64 << p).find(|&n| {
        let idx = analysis.decide(&[n]).unwrap().region_id;
        !analysis.partition.choices[idx].is_all_local()
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Testbed A: the default iPAQ-like device, constants measured by
    // calibration (the paper's "synthesized benchmarks" methodology).
    let device = DeviceModel::ipaq_testbed();
    let calibrated: CostModel = device.calibrate();
    let a = Analysis::from_source(
        PROGRAM,
        AnalysisOptions {
            cost: calibrated,
            ..Default::default()
        },
    )?;

    // Testbed B: same hosts, but a 10x slower, higher-latency link.
    let mut slow = CostModel::ipaq_testbed();
    slow.send_startup_c2s = &slow.send_startup_c2s * &Rational::from(10);
    slow.send_startup_s2c = &slow.send_startup_s2c * &Rational::from(10);
    slow.send_unit_c2s = &slow.send_unit_c2s * &Rational::from(10);
    slow.send_unit_s2c = &slow.send_unit_s2c * &Rational::from(10);
    slow.sched_c2s = &slow.sched_c2s * &Rational::from(10);
    slow.sched_s2c = &slow.sched_s2c * &Rational::from(10);
    let b = Analysis::from_source(
        PROGRAM,
        AnalysisOptions {
            cost: slow,
            ..Default::default()
        },
    )?;

    println!("fast link: offloading starts at n ≈ {:?}", crossover(&a));
    println!("slow link: offloading starts at n ≈ {:?}", crossover(&b));
    println!();
    println!("fast-link guards:\n{}", a.describe_choices());
    println!("slow-link guards:\n{}", b.describe_choices());

    match (crossover(&a), crossover(&b)) {
        (Some(fast), Some(slow)) => assert!(
            fast <= slow,
            "a slower link can only delay the crossover ({fast} vs {slow})"
        ),
        (Some(_), None) => println!("slow link: offloading never pays below the probe range"),
        other => println!("crossovers: {other:?}"),
    }
    Ok(())
}
