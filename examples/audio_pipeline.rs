//! The paper's motivating scenario: an audio encoding pipeline on a
//! handheld device (the Figure 1 program), dispatched adaptively under
//! different run-time parameters.
//!
//! ```text
//! cargo run -p offload-bench --example audio_pipeline
//! ```

use offload_core::{Analysis, AnalysisOptions};
use offload_runtime::{DeviceModel, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let analysis = Analysis::from_source(
        offload_lang::examples_src::FIGURE1,
        AnalysisOptions::default(),
    )?;
    println!("== Figure 1 audio pipeline ==");
    println!("{}", analysis.describe_choices());

    let sim = Simulator::new(&analysis, DeviceModel::ipaq_testbed());

    // x frames of y samples each; z units of work per sample.
    // Sweep the per-sample work z, as the paper's §1.1 discussion does.
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>9}",
        "z", "choice", "adaptive", "local", "speedup"
    );
    for z in [1i64, 4, 16, 64, 256, 1024, 4096] {
        let params = [4i64, 32, z];
        let input: Vec<i64> = (0..(params[0] * params[1])).map(|v| v % 100).collect();
        let (choice, run) = sim.run_dispatched(&params, &input)?;
        let local = sim.run_local(&params, &input)?;
        assert_eq!(run.outputs, local.outputs);
        let t_run = run.stats.total_time.to_f64();
        let t_local = local.stats.total_time.to_f64();
        println!(
            "{z:>8} {:>10} {t_run:>12.0} {t_local:>12.0} {:>8.2}x",
            if analysis.partition.choices[choice].is_all_local() {
                "local"
            } else {
                "offload"
            },
            t_local / t_run,
        );
    }
    println!("\nmessages are only exchanged when offloading pays for itself;");
    println!("the guard conditions above are evaluated at dispatch time (Figure 2).");
    Ok(())
}
