//! Quickstart: analyze a small program, print its partitioning choices
//! and dispatch guards, then execute it locally and offloaded.
//!
//! ```text
//! cargo run -p offload-bench --example quickstart
//! ```

use offload_core::{Analysis, AnalysisOptions};
use offload_runtime::{DeviceModel, Simulator};

const PROGRAM: &str = "
    // A compute kernel whose work depends on the run-time parameter n.
    int work(int k) {
        int j;
        int acc;
        acc = 0;
        for (j = 0; j < k; j++) {
            acc = acc + j * j % 1000;
        }
        return acc;
    }

    void main(int n) {
        output(work(n));
    }";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Parametric analysis: one optimal partitioning per region of the
    //    parameter space (Algorithm 2 of Wang & Li, PLDI 2004).
    let analysis = Analysis::from_source(PROGRAM, AnalysisOptions::default())?;
    println!("tasks: {}", analysis.tcfg.tasks().len());
    println!("tracked data items: {}", analysis.items.items.len());
    println!("partitioning choices:\n{}", analysis.describe_choices());

    // 2. Run-time dispatch (the Figure 2 transformation): the parameter
    //    value picks the partitioning.
    let sim = Simulator::new(&analysis, DeviceModel::ipaq_testbed());
    for n in [10i64, 1_000, 1_000_000] {
        let (choice, run) = sim.run_dispatched(&[n], &[])?;
        let local = sim.run_local(&[n], &[])?;
        println!(
            "n={n:>9}: choice {choice} ({}) time {} vs local {} — output {:?}",
            if analysis.partition.choices[choice].is_all_local() {
                "local"
            } else {
                "offloaded"
            },
            run.stats.total_time.to_f64(),
            local.stats.total_time.to_f64(),
            run.outputs,
        );
        assert_eq!(run.outputs, local.outputs, "behaviour is preserved");
    }
    Ok(())
}
