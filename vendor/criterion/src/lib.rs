//! Offline stand-in for the crates.io `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! this minimal implementation of the API subset its benches use:
//! [`Criterion`], [`Bencher::iter`], benchmark groups, [`BenchmarkId`],
//! [`black_box`], and the `criterion_group!`/`criterion_main!` macros.
//! Timing is a plain wall-clock mean over a fixed warm-up + sample loop —
//! good enough for relative comparisons, with no statistics machinery.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier for a parameterized benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter display.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), param),
        }
    }

    /// An id made of a parameter display only.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Bencher {
            samples: Vec::new(),
            sample_count,
        }
    }

    /// Times `f` over warm-up plus `sample_count` measured runs.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: two untimed runs.
        for _ in 0..2 {
            black_box(f());
        }
        for _ in 0..self.sample_count {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<40} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().expect("nonempty");
        let max = self.samples.iter().max().expect("nonempty");
        println!("{label:<40} mean {mean:>12.3?}   min {min:>12.3?}   max {max:>12.3?}");
    }
}

/// A named collection of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets how many measured samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Runs one benchmark that borrows a prepared input.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Finishes the group (prints a trailing newline, as criterion does).
    pub fn finish(&mut self) {
        println!();
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = if self.sample_size == 0 {
            10
        } else {
            self.sample_size
        };
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _parent: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let n = if self.sample_size == 0 {
            10
        } else {
            self.sample_size
        };
        let mut b = Bencher::new(n);
        f(&mut b);
        b.report(&id.to_string());
        self
    }

    /// Final configuration hook (kept for macro compatibility).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Reports completion (kept for macro compatibility).
    pub fn final_summary(&mut self) {}
}

/// Declares a group of benchmark functions, as crates.io criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
            c.final_summary();
        }
    };
}

/// Declares the bench entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
